//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand 0.8` it actually uses: [`Rng`] with
//! `gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], [`rngs::StdRng`]
//! and [`seq::SliceRandom`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha12 of the real
//! crate, but deterministic, fast, and statistically strong enough for the
//! search algorithm and every statistical test in the workspace.

use std::ops::{Range, RangeInclusive};

/// A random number generator: everything derives from `next_u64`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (half-open `a..b` or inclusive
    /// `a..=b`; integer or `f64` bounds).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// `u64` in `[0, n)` without modulo bias (Lemire's method).
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry (vanishingly rare for small n).
    }
}

/// `f64` uniform in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty range in gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(0.0..2.5);
            assert!((0.0..2.5).contains(&f));
        }
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        const N: u32 = 80_000;
        for _ in 0..N {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        let expect = (N / 8) as f64;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.1, "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as i64 - 2500).abs() < 300, "hits = {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..4)
        }
        let mut rng = StdRng::seed_from_u64(2);
        assert!(draw(&mut rng) < 4);
    }
}
