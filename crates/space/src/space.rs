//! The fault-space hyperspace: Cartesian product of axes, with holes.

use crate::axis::{Axis, Value};
use crate::point::Point;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Errors constructing or addressing a [`FaultSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// A space must have at least one axis.
    NoAxes,
    /// An axis has no values, so the product space would be empty.
    EmptyAxis(String),
    /// A point's arity does not match the number of axes.
    ArityMismatch {
        /// Arity of the offending point.
        got: usize,
        /// Number of axes in the space.
        want: usize,
    },
    /// An attribute index is out of range for its axis.
    IndexOutOfRange {
        /// The offending axis position.
        axis: usize,
        /// The offending attribute index.
        index: usize,
        /// Cardinality of that axis.
        len: usize,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::NoAxes => write!(f, "fault space needs at least one axis"),
            SpaceError::EmptyAxis(name) => write!(f, "axis `{name}` has no values"),
            SpaceError::ArityMismatch { got, want } => {
                write!(f, "point arity {got} does not match {want} axes")
            }
            SpaceError::IndexOutOfRange { axis, index, len } => {
                write!(
                    f,
                    "attribute index {index} out of range for axis {axis} (len {len})"
                )
            }
        }
    }
}

impl std::error::Error for SpaceError {}

/// Predicate marking invalid attribute combinations ("holes", §2).
type HolePredicate = Arc<dyn Fn(&Point) -> bool + Send + Sync>;

/// A fault space `Φ = X1 × X2 × .. × XN` (§2).
///
/// Points are addressed by attribute indices; a bijective linear index over
/// the full product (row-major, axis 0 slowest) supports exhaustive and
/// random exploration. Holes — invalid combinations, like `close` returning
/// `1` — are modelled as an explicit set plus an optional predicate; holes
/// stay inside the product for addressing purposes but are reported
/// non-member by [`FaultSpace::is_valid`].
///
/// # Examples
///
/// ```
/// use afex_space::{Axis, FaultSpace, Point};
///
/// let space = FaultSpace::new(vec![
///     Axis::symbolic("function", ["open", "close"]),
///     Axis::int_range("callNumber", 1, 3),
/// ])
/// .unwrap();
/// assert_eq!(space.len(), 6);
///
/// let phi = Point::new(vec![1, 2]);
/// let idx = space.linear_index(&phi).unwrap();
/// assert_eq!(space.point_at(idx).unwrap(), phi);
/// ```
#[derive(Clone)]
pub struct FaultSpace {
    axes: Vec<Axis>,
    holes: HashSet<Point>,
    hole_pred: Option<HolePredicate>,
}

impl fmt::Debug for FaultSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultSpace")
            .field("axes", &self.axes)
            .field("holes", &self.holes.len())
            .field("hole_pred", &self.hole_pred.is_some())
            .finish()
    }
}

impl FaultSpace {
    /// Creates a fault space from its axes.
    ///
    /// # Errors
    ///
    /// Returns [`SpaceError::NoAxes`] for an empty axis list and
    /// [`SpaceError::EmptyAxis`] if any axis has no values.
    pub fn new(axes: Vec<Axis>) -> Result<Self, SpaceError> {
        if axes.is_empty() {
            return Err(SpaceError::NoAxes);
        }
        if let Some(a) = axes.iter().find(|a| a.is_empty()) {
            return Err(SpaceError::EmptyAxis(a.name().to_owned()));
        }
        Ok(FaultSpace {
            axes,
            holes: HashSet::new(),
            hole_pred: None,
        })
    }

    /// Registers an explicit hole (invalid fault).
    ///
    /// # Errors
    ///
    /// Fails if the point is not inside the product space.
    pub fn add_hole(&mut self, p: Point) -> Result<(), SpaceError> {
        self.check(&p)?;
        self.holes.insert(p);
        Ok(())
    }

    /// Installs a predicate marking holes; `pred(p) == true` means `p` is
    /// invalid. Composes with explicit holes (union).
    pub fn set_hole_predicate<F>(&mut self, pred: F)
    where
        F: Fn(&Point) -> bool + Send + Sync + 'static,
    {
        self.hole_pred = Some(Arc::new(pred));
    }

    /// The axes spanning this space.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// The i-th axis.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn axis(&self, i: usize) -> &Axis {
        &self.axes[i]
    }

    /// Looks up an axis by name.
    pub fn axis_by_name(&self, name: &str) -> Option<(usize, &Axis)> {
        self.axes.iter().enumerate().find(|(_, a)| a.name() == name)
    }

    /// Dimensionality N of the space.
    pub fn arity(&self) -> usize {
        self.axes.len()
    }

    /// Total number of points in the product (including holes).
    pub fn len(&self) -> u64 {
        self.axes.iter().map(|a| a.len() as u64).product()
    }

    /// Whether the product is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of explicitly registered holes.
    pub fn explicit_hole_count(&self) -> usize {
        self.holes.len()
    }

    /// Whether `p` lies inside the product space (holes included).
    pub fn contains(&self, p: &Point) -> bool {
        self.check(p).is_ok()
    }

    /// Whether `p` is a *valid* fault: inside the product and not a hole.
    pub fn is_valid(&self, p: &Point) -> bool {
        self.contains(p)
            && !self.holes.contains(p)
            && !self.hole_pred.as_ref().is_some_and(|f| f(p))
    }

    /// Validates that `p` addresses this space.
    ///
    /// # Errors
    ///
    /// Returns the specific arity or range violation.
    pub fn check(&self, p: &Point) -> Result<(), SpaceError> {
        if p.arity() != self.arity() {
            return Err(SpaceError::ArityMismatch {
                got: p.arity(),
                want: self.arity(),
            });
        }
        for (i, (&idx, axis)) in p.attrs().iter().zip(&self.axes).enumerate() {
            if idx >= axis.len() {
                return Err(SpaceError::IndexOutOfRange {
                    axis: i,
                    index: idx,
                    len: axis.len(),
                });
            }
        }
        Ok(())
    }

    /// The attribute values of `p`, axis by axis.
    ///
    /// # Errors
    ///
    /// Fails if `p` does not address this space.
    pub fn values_of<'s>(&'s self, p: &Point) -> Result<Vec<&'s Value>, SpaceError> {
        self.check(p)?;
        Ok(p.attrs()
            .iter()
            .zip(&self.axes)
            .map(|(&i, a)| a.value(i))
            .collect())
    }

    /// Renders `p` in the Fig. 5 scenario format:
    /// `function malloc errno ENOMEM retval 0 callNumber 23`.
    ///
    /// # Panics
    ///
    /// Panics if `p` does not address this space.
    pub fn render(&self, p: &Point) -> String {
        let vals = self
            .values_of(p)
            .expect("point must address this fault space");
        let mut out = String::new();
        for (axis, v) in self.axes.iter().zip(vals) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(axis.name());
            out.push(' ');
            out.push_str(&v.to_string());
        }
        out
    }

    /// Row-major linear index of `p` (axis 0 varies slowest).
    ///
    /// # Errors
    ///
    /// Fails if `p` does not address this space.
    pub fn linear_index(&self, p: &Point) -> Result<u64, SpaceError> {
        self.check(p)?;
        let mut idx: u64 = 0;
        for (&a, axis) in p.attrs().iter().zip(&self.axes) {
            idx = idx * axis.len() as u64 + a as u64;
        }
        Ok(idx)
    }

    /// The point at row-major linear index `idx`, inverse of
    /// [`FaultSpace::linear_index`]. Returns `None` if out of range.
    pub fn point_at(&self, idx: u64) -> Option<Point> {
        if idx >= self.len() {
            return None;
        }
        let mut rem = idx;
        let mut attrs = vec![0usize; self.arity()];
        for (slot, axis) in attrs.iter_mut().zip(&self.axes).rev() {
            let n = axis.len() as u64;
            *slot = (rem % n) as usize;
            rem /= n;
        }
        Some(Point::new(attrs))
    }

    /// Iterates over every point of the product space in row-major order
    /// (exhaustive exploration, §3). Holes are included; filter with
    /// [`FaultSpace::is_valid`] if needed.
    pub fn iter_points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len()).map(move |i| self.point_at(i).expect("index in range by construction"))
    }

    /// Returns a space with axis `axis_pos` restricted to the value indices
    /// in `keep` (fault-space trimming, §7.5). Explicit holes that survive
    /// the restriction are remapped; the hole predicate is dropped because
    /// index remapping would silently change its meaning.
    ///
    /// # Panics
    ///
    /// Panics if `axis_pos` is out of range.
    pub fn restricted(&self, axis_pos: usize, keep: &[usize]) -> Result<Self, SpaceError> {
        assert!(axis_pos < self.arity(), "axis position out of range");
        let mut axes = self.axes.clone();
        axes[axis_pos] = axes[axis_pos].restricted(keep);
        let mut out = FaultSpace::new(axes)?;
        for h in &self.holes {
            if let Some(new_idx) = keep.iter().position(|&k| k == h[axis_pos]) {
                let remapped = h.with_attr(axis_pos, new_idx);
                out.holes.insert(remapped);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FaultSpace {
        FaultSpace::new(vec![
            Axis::symbolic("function", ["open", "close", "read"]),
            Axis::int_range("callNumber", 1, 4),
            Axis::symbolic("retval", ["-1", "0"]),
        ])
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(FaultSpace::new(vec![]).unwrap_err(), SpaceError::NoAxes);
        let empty = Axis::symbolic("f", Vec::<String>::new());
        assert_eq!(
            FaultSpace::new(vec![empty]).unwrap_err(),
            SpaceError::EmptyAxis("f".into())
        );
    }

    #[test]
    fn len_is_product_of_cardinalities() {
        assert_eq!(small().len(), 3 * 4 * 2);
    }

    #[test]
    fn contains_and_check() {
        let s = small();
        assert!(s.contains(&Point::new(vec![2, 3, 1])));
        assert!(!s.contains(&Point::new(vec![3, 0, 0])));
        assert!(!s.contains(&Point::new(vec![0, 0])));
        assert_eq!(
            s.check(&Point::new(vec![0, 9, 0])).unwrap_err(),
            SpaceError::IndexOutOfRange {
                axis: 1,
                index: 9,
                len: 4
            }
        );
    }

    #[test]
    fn linear_index_roundtrip_all_points() {
        let s = small();
        for i in 0..s.len() {
            let p = s.point_at(i).unwrap();
            assert_eq!(s.linear_index(&p).unwrap(), i);
        }
        assert!(s.point_at(s.len()).is_none());
    }

    #[test]
    fn iter_points_visits_everything_once() {
        let s = small();
        let pts: Vec<_> = s.iter_points().collect();
        assert_eq!(pts.len() as u64, s.len());
        let set: std::collections::HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(set.len() as u64, s.len());
    }

    #[test]
    fn explicit_holes_invalidate_points() {
        let mut s = small();
        let hole = Point::new(vec![1, 0, 1]); // `close` returning 0.
        s.add_hole(hole.clone()).unwrap();
        assert!(s.contains(&hole));
        assert!(!s.is_valid(&hole));
        assert!(s.is_valid(&Point::new(vec![1, 0, 0])));
        assert_eq!(s.explicit_hole_count(), 1);
    }

    #[test]
    fn hole_predicate_composes() {
        let mut s = small();
        // All `read` faults are declared invalid.
        s.set_hole_predicate(|p| p[0] == 2);
        assert!(!s.is_valid(&Point::new(vec![2, 1, 0])));
        assert!(s.is_valid(&Point::new(vec![0, 1, 0])));
    }

    #[test]
    fn add_hole_rejects_foreign_points() {
        let mut s = small();
        assert!(s.add_hole(Point::new(vec![9, 9, 9])).is_err());
    }

    #[test]
    fn values_and_render() {
        let s = small();
        let p = Point::new(vec![1, 2, 0]);
        let vals = s.values_of(&p).unwrap();
        assert_eq!(vals[0].as_sym(), Some("close"));
        assert_eq!(vals[1].as_int(), Some(3));
        assert_eq!(s.render(&p), "function close callNumber 3 retval -1");
    }

    #[test]
    fn axis_by_name() {
        let s = small();
        let (i, a) = s.axis_by_name("callNumber").unwrap();
        assert_eq!(i, 1);
        assert_eq!(a.len(), 4);
        assert!(s.axis_by_name("nope").is_none());
    }

    #[test]
    fn restricted_trims_axis_and_remaps_holes() {
        let mut s = small();
        s.add_hole(Point::new(vec![0, 2, 0])).unwrap();
        s.add_hole(Point::new(vec![0, 1, 0])).unwrap();
        // Keep call numbers 3 and 4 (indices 2 and 3).
        let t = s.restricted(1, &[2, 3]).unwrap();
        assert_eq!(t.len(), 3 * 2 * 2);
        // The hole at old index 2 survives at new index 0; old index 1 is gone.
        assert!(!t.is_valid(&Point::new(vec![0, 0, 0])));
        assert_eq!(t.explicit_hole_count(), 1);
    }
}
