//! Uniform fault-space sampling (the "random exploration" primitive, §3).

use crate::point::Point;
use crate::space::FaultSpace;
use rand::Rng;

/// Uniform sampler over a fault space, with optional rejection of holes.
///
/// Random exploration "constructs random combinations of attribute values
/// and evaluates the corresponding points in the fault space" (§3). This
/// sampler draws points uniformly from the product space; when the space
/// has holes, [`UniformSampler::sample_valid`] rejects them (bounded
/// retries, so a pathological all-hole space cannot loop forever).
///
/// # Examples
///
/// ```
/// use afex_space::{Axis, FaultSpace, UniformSampler};
/// use rand::SeedableRng;
///
/// let space = FaultSpace::new(vec![
///     Axis::symbolic("function", ["open", "close"]),
///     Axis::int_range("callNumber", 1, 100),
/// ])
/// .unwrap();
/// let sampler = UniformSampler::new(&space);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let p = sampler.sample(&mut rng);
/// assert!(space.contains(&p));
/// ```
pub struct UniformSampler<'s> {
    space: &'s FaultSpace,
}

impl<'s> UniformSampler<'s> {
    /// Maximum rejection-sampling retries before giving up on a valid point.
    pub const MAX_REJECTS: usize = 4096;

    /// Creates a sampler over `space`.
    pub fn new(space: &'s FaultSpace) -> Self {
        UniformSampler { space }
    }

    /// Draws one point uniformly from the product space (holes included).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        self.space
            .axes()
            .iter()
            .map(|a| rng.gen_range(0..a.len()))
            .collect()
    }

    /// Draws one *valid* point (not a hole), or `None` after
    /// [`UniformSampler::MAX_REJECTS`] consecutive rejections.
    pub fn sample_valid<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Point> {
        for _ in 0..Self::MAX_REJECTS {
            let p = self.sample(rng);
            if self.space.is_valid(&p) {
                return Some(p);
            }
        }
        None
    }

    /// Draws `n` distinct points, uniformly without replacement (used for
    /// the initial random batch of the fitness-guided search). If the space
    /// holds fewer than `n` valid points, returns as many as were found
    /// within the retry budget.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Point> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::with_capacity(n);
        let mut rejects = 0usize;
        while out.len() < n && rejects < Self::MAX_REJECTS {
            let p = self.sample(rng);
            if self.space.is_valid(&p) && seen.insert(p.clone()) {
                out.push(p);
                rejects = 0;
            } else {
                rejects += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> FaultSpace {
        FaultSpace::new(vec![Axis::int_range("a", 0, 9), Axis::int_range("b", 0, 9)]).unwrap()
    }

    #[test]
    fn samples_are_in_space() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        let sampler = UniformSampler::new(&s);
        for _ in 0..1000 {
            assert!(s.contains(&sampler.sample(&mut rng)));
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = UniformSampler::new(&s);
        let mut counts = vec![0u32; 100];
        const N: usize = 20_000;
        for _ in 0..N {
            let p = sampler.sample(&mut rng);
            counts[(s.linear_index(&p).unwrap()) as usize] += 1;
        }
        let expect = N as f64 / 100.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.5,
                "cell {i} count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn sample_valid_rejects_holes() {
        let mut s = space();
        s.set_hole_predicate(|p| p[0] != 3);
        let sampler = UniformSampler::new(&s);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let p = sampler.sample_valid(&mut rng).unwrap();
            assert_eq!(p[0], 3);
        }
    }

    #[test]
    fn sample_valid_gives_up_on_all_hole_space() {
        let mut s = space();
        s.set_hole_predicate(|_| true);
        let sampler = UniformSampler::new(&s);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sampler.sample_valid(&mut rng).is_none());
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let s = space();
        let sampler = UniformSampler::new(&s);
        let mut rng = StdRng::seed_from_u64(9);
        let pts = sampler.sample_distinct(&mut rng, 50);
        assert_eq!(pts.len(), 50);
        let set: std::collections::HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn sample_distinct_saturates_small_space() {
        let s = FaultSpace::new(vec![Axis::int_range("a", 0, 3)]).unwrap();
        let sampler = UniformSampler::new(&s);
        let mut rng = StdRng::seed_from_u64(2);
        let pts = sampler.sample_distinct(&mut rng, 100);
        assert_eq!(pts.len(), 4);
    }
}
