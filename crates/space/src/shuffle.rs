//! Axis shuffles for the structure-loss experiment (Table 4).
//!
//! §7.3 evaluates how much AFEX leverages fault-space structure by
//! randomizing one dimension at a time: "the values along that Xi are
//! shuffled, thus eliminating any structure it had". An [`AxisShuffle`]
//! is a bijection on one axis's indices; applying it to a space yields a
//! view in which walking along the shuffled axis no longer correlates with
//! the underlying system's modularity, while the set of reachable faults is
//! unchanged.

use crate::point::Point;
use crate::space::FaultSpace;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A random permutation of one axis of a fault space.
///
/// The shuffle maps *presented* indices (what the search algorithm sees) to
/// *actual* indices (what the injector receives). Because the map is a
/// bijection, exhaustive and random exploration are unaffected — only
/// locality-exploiting searches lose efficiency, which is exactly what
/// Table 4 measures.
///
/// # Examples
///
/// ```
/// use afex_space::{Axis, AxisShuffle, FaultSpace, Point};
/// use rand::SeedableRng;
///
/// let space = FaultSpace::new(vec![
///     Axis::int_range("x", 0, 9),
///     Axis::int_range("y", 0, 9),
/// ])
/// .unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let shuffle = AxisShuffle::random(&space, 0, &mut rng);
/// let p = Point::new(vec![3, 4]);
/// let q = shuffle.apply(&p);
/// assert_eq!(q[1], 4); // Other axes pass through.
/// assert_eq!(shuffle.unapply(&q), p); // Bijective.
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisShuffle {
    axis: usize,
    /// `forward[presented] = actual`.
    forward: Vec<usize>,
    /// `inverse[actual] = presented`.
    inverse: Vec<usize>,
}

impl AxisShuffle {
    /// Creates the identity shuffle on `axis` (useful as a control).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range for `space`.
    pub fn identity(space: &FaultSpace, axis: usize) -> Self {
        assert!(axis < space.arity(), "axis out of range");
        let n = space.axis(axis).len();
        AxisShuffle {
            axis,
            forward: (0..n).collect(),
            inverse: (0..n).collect(),
        }
    }

    /// Creates a uniformly random shuffle of `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range for `space`.
    pub fn random<R: Rng + ?Sized>(space: &FaultSpace, axis: usize, rng: &mut R) -> Self {
        let mut s = Self::identity(space, axis);
        s.forward.shuffle(rng);
        for (presented, &actual) in s.forward.iter().enumerate() {
            s.inverse[actual] = presented;
        }
        s
    }

    /// Creates a shuffle from an explicit permutation (`forward[i]` is the
    /// actual index presented as `i`).
    ///
    /// # Panics
    ///
    /// Panics if `forward` is not a permutation of the axis's indices.
    pub fn from_permutation(space: &FaultSpace, axis: usize, forward: Vec<usize>) -> Self {
        assert!(axis < space.arity(), "axis out of range");
        let n = space.axis(axis).len();
        assert_eq!(forward.len(), n, "permutation length mismatch");
        let mut inverse = vec![usize::MAX; n];
        for (presented, &actual) in forward.iter().enumerate() {
            assert!(actual < n, "index out of range");
            assert_eq!(inverse[actual], usize::MAX, "not a permutation");
            inverse[actual] = presented;
        }
        AxisShuffle {
            axis,
            forward,
            inverse,
        }
    }

    /// The shuffled axis position.
    pub fn axis(&self) -> usize {
        self.axis
    }

    /// Translates a presented point into the actual point to inject.
    ///
    /// # Panics
    ///
    /// Panics if the point's attribute on the shuffled axis is out of range.
    pub fn apply(&self, presented: &Point) -> Point {
        presented.with_attr(self.axis, self.forward[presented[self.axis]])
    }

    /// Translates an actual point back into its presented form.
    ///
    /// # Panics
    ///
    /// Panics if the point's attribute on the shuffled axis is out of range.
    pub fn unapply(&self, actual: &Point) -> Point {
        actual.with_attr(self.axis, self.inverse[actual[self.axis]])
    }

    /// Wraps an impact function so that it sees presented coordinates:
    /// `shuffled_impact(p) = impact(apply(p))`. This is the Table 4 harness
    /// primitive — the search runs against the wrapped function.
    pub fn wrap<'f, F>(&'f self, impact: F) -> impl Fn(&Point) -> f64 + 'f
    where
        F: Fn(&Point) -> f64 + 'f,
    {
        move |p: &Point| impact(&self.apply(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> FaultSpace {
        FaultSpace::new(vec![Axis::int_range("x", 0, 9), Axis::int_range("y", 0, 4)]).unwrap()
    }

    #[test]
    fn identity_is_noop() {
        let s = space();
        let sh = AxisShuffle::identity(&s, 0);
        let p = Point::new(vec![7, 2]);
        assert_eq!(sh.apply(&p), p);
        assert_eq!(sh.unapply(&p), p);
    }

    #[test]
    fn random_shuffle_is_bijective() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(99);
        let sh = AxisShuffle::random(&s, 0, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            let p = Point::new(vec![i, 0]);
            let q = sh.apply(&p);
            assert!(seen.insert(q[0]));
            assert_eq!(sh.unapply(&q), p);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn other_axes_pass_through() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        let sh = AxisShuffle::random(&s, 0, &mut rng);
        let p = Point::new(vec![5, 3]);
        assert_eq!(sh.apply(&p)[1], 3);
    }

    #[test]
    fn from_permutation_roundtrip() {
        let s = space();
        let sh = AxisShuffle::from_permutation(&s, 1, vec![4, 3, 2, 1, 0]);
        let p = Point::new(vec![0, 0]);
        assert_eq!(sh.apply(&p)[1], 4);
        assert_eq!(sh.unapply(&sh.apply(&p)), p);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_permutation_rejects_duplicates() {
        let s = space();
        let _ = AxisShuffle::from_permutation(&s, 1, vec![0, 0, 1, 2, 3]);
    }

    #[test]
    fn wrap_translates_impact_queries() {
        let s = space();
        let sh = AxisShuffle::from_permutation(&s, 0, vec![9, 8, 7, 6, 5, 4, 3, 2, 1, 0]);
        // Actual impact peaks at x == 0.
        let impact = |p: &Point| if p[0] == 0 { 1.0 } else { 0.0 };
        let wrapped = sh.wrap(impact);
        // Presented x == 9 maps to actual x == 0.
        assert_eq!(wrapped(&Point::new(vec![9, 0])), 1.0);
        assert_eq!(wrapped(&Point::new(vec![0, 0])), 0.0);
    }

    #[test]
    fn shuffle_preserves_reachable_set() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(17);
        let sh = AxisShuffle::random(&s, 0, &mut rng);
        let all: std::collections::HashSet<_> = s.iter_points().map(|p| sh.apply(&p)).collect();
        assert_eq!(all.len() as u64, s.len());
    }
}
