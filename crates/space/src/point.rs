//! Fault-space points (faults).
//!
//! A fault `φ ∈ Φ` is a vector of attribute *indices* `<α1, ..., αN>`, where
//! `αi` indexes the i-th axis under its total order (§2). Storing indices —
//! not values — keeps points cheap to clone, hash, and mutate, which matters
//! because the explorer touches millions of them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in a fault space: the attribute-index vector of one fault.
///
/// # Examples
///
/// ```
/// use afex_space::Point;
///
/// // `<close, 5, -1>` as `<2, 5, 1>` in the §2 example encoding
/// // (1-based in the paper, 0-based here).
/// let phi = Point::new(vec![1, 4, 0]);
/// assert_eq!(phi.arity(), 3);
/// assert_eq!(phi[1], 4);
///
/// let psi = phi.with_attr(1, 6);
/// assert_eq!(psi[1], 6);
/// assert_eq!(phi[1], 4); // The original is untouched.
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Point(Vec<usize>);

impl Point {
    /// Creates a point from attribute indices.
    pub fn new(attrs: Vec<usize>) -> Self {
        Point(attrs)
    }

    /// The number of attributes (the dimensionality N of the space).
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The attribute indices.
    pub fn attrs(&self) -> &[usize] {
        &self.0
    }

    /// Returns a clone with attribute `axis` replaced by `value` — the
    /// mutation primitive of Algorithm 1 (lines 10–11).
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.arity()`.
    pub fn with_attr(&self, axis: usize, value: usize) -> Self {
        let mut p = self.clone();
        p.0[axis] = value;
        p
    }

    /// Mutates attribute `axis` in place.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.arity()`.
    pub fn set_attr(&mut self, axis: usize, value: usize) {
        self.0[axis] = value;
    }
}

impl std::ops::Index<usize> for Point {
    type Output = usize;

    fn index(&self, i: usize) -> &usize {
        &self.0[i]
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ">")
    }
}

impl From<Vec<usize>> for Point {
    fn from(v: Vec<usize>) -> Self {
        Point::new(v)
    }
}

impl FromIterator<usize> for Point {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        Point::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_indexing() {
        let p = Point::new(vec![3, 1, 4]);
        assert_eq!(p.arity(), 3);
        assert_eq!(p[0], 3);
        assert_eq!(p[2], 4);
        assert_eq!(p.attrs(), &[3, 1, 4]);
    }

    #[test]
    fn with_attr_is_pure() {
        let p = Point::new(vec![0, 0]);
        let q = p.with_attr(1, 9);
        assert_eq!(p.attrs(), &[0, 0]);
        assert_eq!(q.attrs(), &[0, 9]);
    }

    #[test]
    fn set_attr_mutates() {
        let mut p = Point::new(vec![1, 2, 3]);
        p.set_attr(0, 7);
        assert_eq!(p.attrs(), &[7, 2, 3]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Point::new(vec![2, 5, 1]);
        assert_eq!(p.to_string(), "<2,5,1>");
    }

    #[test]
    fn hashes_as_value_type() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Point::new(vec![1, 2]));
        assert!(s.contains(&Point::new(vec![1, 2])));
        assert!(!s.contains(&Point::new(vec![2, 1])));
    }

    #[test]
    fn from_iterator() {
        let p: Point = (0..4).collect();
        assert_eq!(p.attrs(), &[0, 1, 2, 3]);
    }
}
