//! Fault-space model for AFEX (EuroSys 2012, §2).
//!
//! A *fault space* is a concise description of the failures a fault injector
//! can simulate. This crate models a fault space as a hyperspace spanned by
//! totally-ordered axes: a fault `φ = <α1, ..., αN>` is a point whose i-th
//! coordinate is an index into the i-th axis. The crate provides:
//!
//! - [`Axis`] — one totally-ordered attribute (libc function, call number,
//!   test id, errno, ...), with symbolic or numeric values.
//! - [`FaultSpace`] — the Cartesian product of axes, with optional *holes*
//!   (invalid attribute combinations) and linear index ↔ point conversion.
//! - [`Point`] — a fault, i.e. a vector of attribute indices.
//! - [`distance`] — the Manhattan (city-block) metric `δ` and D-vicinity
//!   enumeration used by the relative-linear-density analysis.
//! - [`density`] — the relative linear density `ρ` metric of §2 that
//!   characterizes fault-space structure.
//! - [`desc`] + [`parser`] — the fault-space description language of Fig. 3
//!   (sets, intervals, sub-intervals, unions of subspaces) and scenario
//!   rendering in the Fig. 5 format.
//! - [`shuffle`] — axis permutations used by the structure-loss experiment
//!   (Table 4).
//!
//! # Examples
//!
//! ```
//! use afex_space::{Axis, FaultSpace, Point};
//!
//! // The space of failed calls to POSIX functions from §2:
//! let space = FaultSpace::new(vec![
//!     Axis::symbolic("function", ["open", "close", "read", "write"]),
//!     Axis::int_range("callNumber", 1, 10),
//!     Axis::symbolic("retval", ["-1", "0"]),
//! ])
//! .unwrap();
//!
//! // Fault <close, 5, -1> expressed through attribute indices:
//! let phi = Point::new(vec![1, 4, 0]);
//! assert!(space.contains(&phi));
//! assert_eq!(space.len(), 4 * 10 * 2);
//! assert_eq!(space.render(&phi), "function close callNumber 5 retval -1");
//! ```

pub mod axis;
pub mod codec;
pub mod density;
pub mod desc;
pub mod distance;
pub mod parser;
pub mod point;
pub mod sample;
pub mod shuffle;
pub mod space;

pub use axis::{Axis, AxisKind, Value};
pub use codec::PointCodec;
pub use density::{relative_linear_density, relative_linear_density_in_vicinity};
pub use desc::{Scenario, SpaceDesc, Subspace};
pub use distance::{manhattan, Vicinity};
pub use parser::{parse, ParseError};
pub use point::Point;
pub use sample::UniformSampler;
pub use shuffle::AxisShuffle;
pub use space::{FaultSpace, SpaceError};
