//! Fault-space descriptions: unions of subspaces, and sampled scenarios.
//!
//! §6.2: "Fault spaces are described as a Cartesian product of sets,
//! intervals, and unions of subspaces." A [`SpaceDesc`] is the parsed form
//! of a descriptor file; each [`Subspace`] is one Cartesian product. A
//! sampled fault is rendered as a [`Scenario`] in the Fig. 5 format and sent
//! to a node manager for execution.

use crate::axis::{Axis, AxisKind, Value};
use crate::point::Point;
use crate::space::{FaultSpace, SpaceError};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One Cartesian-product subspace of a fault-space description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Subspace {
    subtypes: Vec<String>,
    params: Vec<Axis>,
}

impl Subspace {
    /// Creates a subspace from its subtype tags and parameter axes.
    pub fn new(subtypes: Vec<String>, params: Vec<Axis>) -> Self {
        Subspace { subtypes, params }
    }

    /// Subtype tags attached to this subspace (may be empty).
    pub fn subtypes(&self) -> &[String] {
        &self.subtypes
    }

    /// Parameter axes of this subspace.
    pub fn params(&self) -> &[Axis] {
        &self.params
    }

    /// Number of points in this subspace.
    pub fn len(&self) -> u64 {
        self.params.iter().map(|a| a.len() as u64).product()
    }

    /// Whether this subspace has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes this subspace as a [`FaultSpace`].
    ///
    /// # Errors
    ///
    /// Propagates [`SpaceError`] for degenerate axis sets.
    pub fn to_fault_space(&self) -> Result<FaultSpace, SpaceError> {
        FaultSpace::new(self.params.clone())
    }
}

/// A parsed fault-space description: a union of subspaces (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpaceDesc {
    subspaces: Vec<Subspace>,
}

impl SpaceDesc {
    /// Creates a description from its subspaces.
    pub fn new(subspaces: Vec<Subspace>) -> Self {
        SpaceDesc { subspaces }
    }

    /// The subspaces of the union.
    pub fn subspaces(&self) -> &[Subspace] {
        &self.subspaces
    }

    /// Total number of points across all subspaces.
    pub fn total_points(&self) -> u64 {
        self.subspaces.iter().map(Subspace::len).sum()
    }

    /// Uniformly samples one fault scenario across the union: a subspace is
    /// picked with probability proportional to its size, then each axis is
    /// sampled per its kind (`[ ]` → single value, `< >` → sub-interval).
    ///
    /// Returns `None` if the description is empty.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Scenario> {
        let total = self.total_points();
        if total == 0 {
            return None;
        }
        let mut ticket = rng.gen_range(0..total);
        let (si, sub) = self.subspaces.iter().enumerate().find(|(_, s)| {
            if ticket < s.len() {
                true
            } else {
                ticket -= s.len();
                false
            }
        })?;
        let attrs = sub
            .params
            .iter()
            .map(|axis| sample_axis(axis, rng))
            .collect();
        Some(Scenario {
            subspace: si,
            subtypes: sub.subtypes.clone(),
            attrs,
        })
    }

    /// Builds the scenario corresponding to a concrete point of one
    /// subspace (used to render explorer-chosen faults for node managers).
    ///
    /// # Errors
    ///
    /// Fails if `subspace` is out of range or `point` does not address it.
    pub fn scenario_for(&self, subspace: usize, point: &Point) -> Result<Scenario, SpaceError> {
        let sub = self.subspaces.get(subspace).ok_or(SpaceError::NoAxes)?;
        let space = sub.to_fault_space()?;
        space.check(point)?;
        let attrs = sub
            .params
            .iter()
            .zip(point.attrs())
            .map(|(axis, &i)| ScenarioAttr {
                name: axis.name().to_owned(),
                value: ScenarioValue::Single(axis.value(i).clone()),
            })
            .collect();
        Ok(Scenario {
            subspace,
            subtypes: sub.subtypes.clone(),
            attrs,
        })
    }
}

fn sample_axis<R: Rng + ?Sized>(axis: &Axis, rng: &mut R) -> ScenarioAttr {
    let value = match axis.kind() {
        AxisKind::Set | AxisKind::Interval => {
            let i = rng.gen_range(0..axis.len());
            ScenarioValue::Single(axis.value(i).clone())
        }
        AxisKind::SubInterval => {
            // Sample an entire sub-interval `<lo, hi>`: two indices, ordered.
            let a = rng.gen_range(0..axis.len());
            let b = rng.gen_range(0..axis.len());
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let lo_v = axis.value(lo).as_int().unwrap_or(lo as i64);
            let hi_v = axis.value(hi).as_int().unwrap_or(hi as i64);
            ScenarioValue::Range(lo_v, hi_v)
        }
    };
    ScenarioAttr {
        name: axis.name().to_owned(),
        value,
    }
}

/// The value bound to one attribute of a sampled scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioValue {
    /// A single sampled value (sets and `[ ]` intervals).
    Single(Value),
    /// A sampled sub-interval (`< >` intervals).
    Range(i64, i64),
}

/// One attribute binding of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioAttr {
    /// The attribute (axis) name.
    pub name: String,
    /// The sampled value.
    pub value: ScenarioValue,
}

/// A concrete fault-injection scenario, renderable in the Fig. 5 format:
/// `function malloc errno ENOMEM retval 0 callNumber 23`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Index of the subspace the scenario was drawn from.
    pub subspace: usize,
    /// Subtype tags of that subspace.
    pub subtypes: Vec<String>,
    /// Attribute bindings in axis order.
    pub attrs: Vec<ScenarioAttr>,
}

impl Scenario {
    /// Looks up an attribute binding by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioValue> {
        self.attrs.iter().find(|a| a.name == name).map(|a| &a.value)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.attrs {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match &a.value {
                ScenarioValue::Single(v) => write!(f, "{} {}", a.name, v)?,
                ScenarioValue::Range(lo, hi) => write!(f, "{} <{},{}>", a.name, lo, hi)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig4() -> SpaceDesc {
        parse(
            "function : { malloc, calloc, realloc }
             errno : { ENOMEM }
             retval : { 0 }
             callNumber : [ 1 , 100 ] ;
             function : { read }
             errno : { EINTR }
             retVal : { -1 }
             callNumber : [ 1 , 50 ] ;",
        )
        .unwrap()
    }

    #[test]
    fn total_points_sums_subspaces() {
        assert_eq!(fig4().total_points(), 350);
    }

    #[test]
    fn sampling_respects_subspace_weights() {
        let d = fig4();
        let mut rng = StdRng::seed_from_u64(7);
        let mut first = 0usize;
        const N: usize = 4000;
        for _ in 0..N {
            let s = d.sample(&mut rng).unwrap();
            if s.subspace == 0 {
                first += 1;
            }
        }
        // Subspace 0 holds 300/350 ≈ 85.7% of the mass.
        let frac = first as f64 / N as f64;
        assert!((frac - 300.0 / 350.0).abs() < 0.03, "frac = {frac}");
    }

    #[test]
    fn sampled_scenario_is_well_formed() {
        let d = fig4();
        let mut rng = StdRng::seed_from_u64(1);
        let s = d.sample(&mut rng).unwrap();
        assert_eq!(s.attrs.len(), 4);
        assert!(s.get("function").is_some());
        match s.get("callNumber").unwrap() {
            ScenarioValue::Single(Value::Int(n)) => assert!((1..=100).contains(n)),
            other => panic!("unexpected callNumber value {other:?}"),
        }
    }

    #[test]
    fn fig5_rendering() {
        let d = fig4();
        // function malloc errno ENOMEM retval 0 callNumber 23.
        let p = Point::new(vec![0, 0, 0, 22]);
        let s = d.scenario_for(0, &p).unwrap();
        assert_eq!(
            s.to_string(),
            "function malloc errno ENOMEM retval 0 callNumber 23"
        );
    }

    #[test]
    fn scenario_for_checks_bounds() {
        let d = fig4();
        assert!(d.scenario_for(5, &Point::new(vec![0])).is_err());
        assert!(d.scenario_for(0, &Point::new(vec![0, 0, 0, 999])).is_err());
    }

    #[test]
    fn subinterval_axes_sample_ranges() {
        let d = parse("window : < 1 , 50 >;").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = d.sample(&mut rng).unwrap();
            match s.get("window").unwrap() {
                ScenarioValue::Range(lo, hi) => {
                    assert!(lo <= hi);
                    assert!(*lo >= 1 && *hi <= 50);
                }
                other => panic!("expected range, got {other:?}"),
            }
        }
    }

    #[test]
    fn empty_desc_samples_none() {
        let d = SpaceDesc::new(vec![]);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(d.sample(&mut rng).is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let d = fig4();
        let json = serde_json::to_string(&d).unwrap();
        let back: SpaceDesc = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
