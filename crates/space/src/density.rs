//! Relative linear density `ρ` (§2).
//!
//! Given a fault `φ` and an axis `Xk`, the relative linear density at `φ`
//! along `Xk` is the average impact of the faults that agree with `φ` on
//! every attribute except the k-th, scaled by the average impact of all
//! faults in the considered region:
//!
//! ```text
//! ρ_k(φ) = avg[ I(<α1,...,αk,...,αN>), αk ∈ Xk ] / avg[ I(φx), φx ∈ Φ ]
//! ```
//!
//! `ρ_k(φ) > 1` means walking from `φ` along `Xk` encounters more
//! high-impact faults than walking in a random direction. In practice the
//! paper computes `ρ` over a small D-vicinity of `φ` rather than the entire
//! space; both variants are provided.

use crate::distance::Vicinity;
use crate::point::Point;
use crate::space::FaultSpace;

/// Relative linear density at `phi` along axis `axis`, over the whole space.
///
/// `impact` maps each fault to its measured impact `I_S(φ)`. Returns `None`
/// when the space-wide average impact is zero (the metric is undefined:
/// there is nothing to scale by).
///
/// This evaluates `impact` over the entire product space, so it is only
/// meant for small spaces (such as analysis of recorded experiments); the
/// explorer itself uses the dynamic sensitivity mechanism instead.
///
/// # Panics
///
/// Panics if `phi` does not address `space` or `axis` is out of range.
pub fn relative_linear_density<F>(
    space: &FaultSpace,
    phi: &Point,
    axis: usize,
    impact: F,
) -> Option<f64>
where
    F: Fn(&Point) -> f64,
{
    space
        .check(phi)
        .expect("density point must address the space");
    assert!(axis < space.arity(), "axis out of range");
    let line_avg = line_average(space, phi, axis, &impact);
    let mut total = 0.0;
    let mut count = 0u64;
    for p in space.iter_points() {
        total += impact(&p);
        count += 1;
    }
    ratio(line_avg, total, count)
}

/// Relative linear density at `phi` along `axis`, computed over the
/// D-vicinity of `phi` (radius `radius`), as recommended by §2 for large
/// spaces. The line average is likewise restricted to the vicinity.
///
/// Returns `None` when the vicinity-wide average impact is zero.
///
/// # Panics
///
/// Panics if `phi` does not address `space` or `axis` is out of range.
pub fn relative_linear_density_in_vicinity<F>(
    space: &FaultSpace,
    phi: &Point,
    axis: usize,
    radius: u64,
    impact: F,
) -> Option<f64>
where
    F: Fn(&Point) -> f64,
{
    space
        .check(phi)
        .expect("density point must address the space");
    assert!(axis < space.arity(), "axis out of range");
    let mut line_sum = 0.0;
    let mut line_n = 0u64;
    let mut total = 0.0;
    let mut count = 0u64;
    for p in Vicinity::new(space, phi, radius) {
        let i = impact(&p);
        total += i;
        count += 1;
        if agrees_except(&p, phi, axis) {
            line_sum += i;
            line_n += 1;
        }
    }
    if line_n == 0 {
        return None;
    }
    ratio(line_sum / line_n as f64, total, count)
}

/// Average impact along the line through `phi` parallel to `axis`.
fn line_average<F>(space: &FaultSpace, phi: &Point, axis: usize, impact: &F) -> f64
where
    F: Fn(&Point) -> f64,
{
    let n = space.axis(axis).len();
    let sum: f64 = (0..n).map(|v| impact(&phi.with_attr(axis, v))).sum();
    sum / n as f64
}

/// Whether `p` agrees with `phi` on every attribute except `axis`.
fn agrees_except(p: &Point, phi: &Point, axis: usize) -> bool {
    p.attrs()
        .iter()
        .zip(phi.attrs())
        .enumerate()
        .all(|(i, (&a, &b))| i == axis || a == b)
}

fn ratio(line_avg: f64, total: f64, count: u64) -> Option<f64> {
    if count == 0 {
        return None;
    }
    let space_avg = total / count as f64;
    if space_avg == 0.0 {
        None
    } else {
        Some(line_avg / space_avg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    /// A 2D space where column 1 (x == 1) is all-impact ("a vertical ship").
    fn ship_space() -> FaultSpace {
        FaultSpace::new(vec![Axis::int_range("x", 0, 4), Axis::int_range("y", 0, 4)]).unwrap()
    }

    fn ship_impact(p: &Point) -> f64 {
        if p[0] == 1 {
            1.0
        } else {
            0.0
        }
    }

    #[test]
    fn density_detects_vertical_structure() {
        let s = ship_space();
        let phi = Point::new(vec![1, 2]);
        // Along y (axis 1) every fault on the line has impact 1.
        let rho_y = relative_linear_density(&s, &phi, 1, ship_impact).unwrap();
        // Space average is 5/25 = 0.2, line average along y is 1.0.
        assert!((rho_y - 5.0).abs() < 1e-9);
        // Along x only 1 of 5 line members has impact.
        let rho_x = relative_linear_density(&s, &phi, 0, ship_impact).unwrap();
        assert!((rho_x - 1.0).abs() < 1e-9);
        assert!(rho_y > rho_x);
    }

    #[test]
    fn density_is_none_for_zero_impact_space() {
        let s = ship_space();
        let phi = Point::new(vec![0, 0]);
        assert_eq!(relative_linear_density(&s, &phi, 0, |_| 0.0), None);
    }

    #[test]
    fn fig1_fclose_vicinity_example() {
        // Reproduces the §2 worked example: fault φ = <fclose, 7> with a
        // 4-vicinity; impact 1 for a "black square". We lay out a space
        // shaped like the Fig. 1 excerpt near fclose: the fclose column is
        // error-prone across tests, neighboring columns mostly are not.
        let s = FaultSpace::new(vec![
            Axis::symbolic("function", ["fopen", "fclose", "stat", "ferror", "fcntl"]),
            Axis::int_range("test", 1, 11),
        ])
        .unwrap();
        // Black squares: the whole fclose column, plus sparse neighbors.
        let impact = |p: &Point| -> f64 {
            let black = p[0] == 1 || (p[0] == 0 && p[1] == 2) || (p[0] == 2 && p[1] == 9);
            if black {
                1.0
            } else {
                0.0
            }
        };
        let phi = Point::new(vec![1, 6]);
        let rho_test = relative_linear_density_in_vicinity(&s, &phi, 1, 4, impact).unwrap();
        let rho_func = relative_linear_density_in_vicinity(&s, &phi, 0, 4, impact).unwrap();
        // Walking vertically (along the test axis) stays on the fclose
        // column and is denser than average; horizontally it is not.
        assert!(rho_test > 1.5, "rho_test = {rho_test}");
        assert!(rho_func < rho_test);
    }

    #[test]
    fn vicinity_density_on_uniform_impact_is_one() {
        let s = ship_space();
        let phi = Point::new(vec![2, 2]);
        let rho = relative_linear_density_in_vicinity(&s, &phi, 0, 2, |_| 3.5).unwrap();
        assert!((rho - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "axis out of range")]
    fn density_rejects_bad_axis() {
        let s = ship_space();
        let _ = relative_linear_density(&s, &Point::new(vec![0, 0]), 7, |_| 0.0);
    }
}
