//! Parser for the AFEX fault-space description language (Fig. 3).
//!
//! The grammar, verbatim from the paper:
//!
//! ```text
//! syntax    = {space};
//! space     = (subtype | parameter)+ ";";
//! subtype   = identifier;
//! parameter = identifier ":"
//!             ( "{" identifier ("," identifier)+ "}" |
//!               "[" number "," number "]" |
//!               "<" number "," number ">" );
//! identifier = letter (letter | digit | "_")*;
//! number     = (digit)+;
//! ```
//!
//! Two deliberate deviations, both required by the paper's own examples
//! (Fig. 4 uses `errno : { ENOMEM }` and `retVal : { -1 }`):
//!
//! 1. Sets may contain a *single* element.
//! 2. Set elements and interval bounds may be (possibly negative) integers
//!    in addition to identifiers.

use crate::axis::{Axis, AxisKind, Value};
use crate::desc::{SpaceDesc, Subspace};
use std::fmt;

/// A parse error, with 1-based line/column of the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// 1-based line of the offending input position.
    pub line: usize,
    /// 1-based column of the offending input position.
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(i64),
    Colon,
    Comma,
    Semi,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LAngle,
    RAngle,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<Spanned>, ParseError> {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    // Comment to end of line (a practical extension for
                    // descriptor files shipped with test suites).
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b':' | b',' | b';' | b'{' | b'}' | b'[' | b']' | b'<' | b'>' => {
                    self.bump();
                    let tok = match c {
                        b':' => Tok::Colon,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b'<' => Tok::LAngle,
                        _ => Tok::RAngle,
                    };
                    out.push(Spanned { tok, line, col });
                }
                b'-' | b'0'..=b'9' => {
                    let neg = c == b'-';
                    if neg {
                        self.bump();
                        if !matches!(self.peek(), Some(b'0'..=b'9')) {
                            return Err(self.err("expected digit after `-`"));
                        }
                    }
                    let mut n: i64 = 0;
                    while let Some(d @ b'0'..=b'9') = self.peek() {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add((d - b'0') as i64))
                            .ok_or_else(|| self.err("number literal overflows i64"))?;
                        self.bump();
                    }
                    out.push(Spanned {
                        tok: Tok::Number(if neg { -n } else { n }),
                        line,
                        col,
                    });
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek() {
                        if c.is_ascii_alphanumeric() || c == b'_' {
                            s.push(c as char);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push(Spanned {
                        tok: Tok::Ident(s),
                        line,
                        col,
                    });
                }
                other => {
                    return Err(self.err(format!("unexpected character `{}`", other as char)));
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1));
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            _ => Err(self.err_at(format!("expected {what}"))),
        }
    }

    /// `syntax = {space}` — zero or more `;`-terminated subspaces.
    fn syntax(&mut self) -> Result<SpaceDesc, ParseError> {
        let mut subspaces = Vec::new();
        while self.peek().is_some() {
            subspaces.push(self.space()?);
        }
        Ok(SpaceDesc::new(subspaces))
    }

    /// `space = (subtype | parameter)+ ";"`.
    fn space(&mut self) -> Result<Subspace, ParseError> {
        let mut subtypes = Vec::new();
        let mut params: Vec<Axis> = Vec::new();
        let mut saw_any = false;
        loop {
            match self.peek() {
                Some(Tok::Semi) => {
                    if !saw_any {
                        return Err(self.err_at("empty subspace before `;`"));
                    }
                    self.bump();
                    break;
                }
                Some(Tok::Ident(_)) => {
                    let name = match self.bump() {
                        Some(Tok::Ident(s)) => s,
                        _ => unreachable!("peeked an identifier"),
                    };
                    saw_any = true;
                    if self.peek() == Some(&Tok::Colon) {
                        self.bump();
                        let axis = self.parameter_body(&name)?;
                        if params.iter().any(|a| a.name() == axis.name()) {
                            return Err(
                                self.err_at(format!("duplicate parameter `{}`", axis.name()))
                            );
                        }
                        params.push(axis);
                    } else {
                        subtypes.push(name);
                    }
                }
                Some(_) => return Err(self.err_at("expected identifier or `;`")),
                None => {
                    return Err(self.err_at("unterminated subspace: missing `;`"));
                }
            }
        }
        if params.is_empty() {
            return Err(self.err_at("subspace declares no parameters"));
        }
        Ok(Subspace::new(subtypes, params))
    }

    /// The part after `identifier ":"`.
    fn parameter_body(&mut self, name: &str) -> Result<Axis, ParseError> {
        match self.peek() {
            Some(Tok::LBrace) => {
                self.bump();
                let mut values = Vec::new();
                loop {
                    match self.bump() {
                        Some(Tok::Ident(s)) => values.push(Value::Sym(s)),
                        Some(Tok::Number(n)) => values.push(Value::Int(n)),
                        _ => return Err(self.err_at("expected set element")),
                    }
                    match self.bump() {
                        Some(Tok::Comma) => continue,
                        Some(Tok::RBrace) => break,
                        _ => return Err(self.err_at("expected `,` or `}` in set")),
                    }
                }
                Ok(Axis::new(name, values, AxisKind::Set))
            }
            Some(Tok::LBracket) => {
                let (lo, hi) = self.interval(Tok::RBracket, "]")?;
                Ok(Axis::int_range(name, lo, hi))
            }
            Some(Tok::LAngle) => {
                let (lo, hi) = self.interval(Tok::RAngle, ">")?;
                Ok(Axis::int_subinterval(name, lo, hi))
            }
            _ => Err(self.err_at("expected `{`, `[` or `<` after `:`")),
        }
    }

    fn interval(&mut self, close: Tok, close_name: &str) -> Result<(i64, i64), ParseError> {
        self.bump(); // The opening bracket.
        let lo = match self.bump() {
            Some(Tok::Number(n)) => n,
            _ => return Err(self.err_at("expected interval lower bound")),
        };
        self.expect(&Tok::Comma, "`,` between interval bounds")?;
        let hi = match self.bump() {
            Some(Tok::Number(n)) => n,
            _ => return Err(self.err_at("expected interval upper bound")),
        };
        match self.bump() {
            Some(t) if t == close => {}
            _ => return Err(self.err_at(format!("expected `{close_name}`"))),
        }
        if lo > hi {
            return Err(self.err_at(format!("interval bounds inverted: {lo} > {hi}")));
        }
        Ok((lo, hi))
    }
}

/// Parses a fault-space description into a [`SpaceDesc`].
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
///
/// # Examples
///
/// The Fig. 4 descriptor from the paper:
///
/// ```
/// let desc = afex_space::parse(
///     "function : { malloc, calloc, realloc }
///      errno : { ENOMEM }
///      retval : { 0 }
///      callNumber : [ 1 , 100 ] ;
///      function : { read }
///      errno : { EINTR }
///      retVal : { -1 }
///      callNumber : [ 1 , 50 ] ;",
/// )
/// .unwrap();
/// assert_eq!(desc.subspaces().len(), 2);
/// assert_eq!(desc.total_points(), 3 * 100 + 50);
/// ```
pub fn parse(input: &str) -> Result<SpaceDesc, ParseError> {
    let toks = Lexer::new(input).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    p.syntax()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig4_example() {
        let d = parse(
            "function : { malloc, calloc, realloc }\n\
             errno : { ENOMEM }\n\
             retval : { 0 }\n\
             callNumber : [ 1 , 100 ] ;\n\
             function : { read }\n\
             errno : { EINTR }\n\
             retVal : { -1 }\n\
             callNumber : [ 1 , 50 ] ;",
        )
        .unwrap();
        assert_eq!(d.subspaces().len(), 2);
        let s0 = &d.subspaces()[0];
        assert_eq!(s0.params()[0].len(), 3);
        assert_eq!(s0.params()[3].len(), 100);
        assert_eq!(d.total_points(), 300 + 50);
    }

    #[test]
    fn parses_subtypes() {
        let d = parse("io_faults function : { read, write } callNumber : [1, 5];").unwrap();
        assert_eq!(d.subspaces()[0].subtypes(), ["io_faults"]);
        assert_eq!(d.subspaces()[0].params().len(), 2);
    }

    #[test]
    fn parses_subinterval_axis() {
        let d = parse("window : < 1 , 50 >;").unwrap();
        assert_eq!(
            d.subspaces()[0].params()[0].kind(),
            crate::axis::AxisKind::SubInterval
        );
        assert_eq!(d.subspaces()[0].params()[0].len(), 50);
    }

    #[test]
    fn single_element_set_is_allowed() {
        // Fig. 4 itself relies on this.
        let d = parse("errno : { ENOMEM };").unwrap();
        assert_eq!(d.subspaces()[0].params()[0].len(), 1);
    }

    #[test]
    fn negative_numbers_in_sets() {
        let d = parse("retval : { -1, 0 };").unwrap();
        let axis = &d.subspaces()[0].params()[0];
        assert_eq!(axis.value(0).as_int(), Some(-1));
        assert_eq!(axis.value(1).as_int(), Some(0));
    }

    #[test]
    fn comments_are_skipped() {
        let d = parse("# The malloc subspace.\nfunction : { malloc }; # trailing\n").unwrap();
        assert_eq!(d.subspaces().len(), 1);
    }

    #[test]
    fn empty_input_is_empty_desc() {
        let d = parse("").unwrap();
        assert!(d.subspaces().is_empty());
        assert_eq!(d.total_points(), 0);
    }

    #[test]
    fn error_missing_semi() {
        let e = parse("function : { read }").unwrap_err();
        assert!(e.message.contains("missing `;`"), "{e}");
    }

    #[test]
    fn error_empty_subspace() {
        let e = parse(";").unwrap_err();
        assert!(e.message.contains("empty subspace"), "{e}");
    }

    #[test]
    fn error_inverted_interval() {
        let e = parse("n : [ 9 , 3 ];").unwrap_err();
        assert!(e.message.contains("inverted"), "{e}");
    }

    #[test]
    fn error_duplicate_parameter() {
        let e = parse("n : [1,2] n : [3,4];").unwrap_err();
        assert!(e.message.contains("duplicate"), "{e}");
    }

    #[test]
    fn error_subspace_without_parameters() {
        let e = parse("just_a_subtype;").unwrap_err();
        assert!(e.message.contains("no parameters"), "{e}");
    }

    #[test]
    fn error_bad_character_has_position() {
        let e = parse("n : [1,\n  2%];").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('%'));
    }

    #[test]
    fn error_dangling_minus() {
        let e = parse("retval : { - };").unwrap_err();
        assert!(e.message.contains("digit"), "{e}");
    }

    #[test]
    fn number_overflow_is_an_error() {
        let e = parse("n : [1, 99999999999999999999];").unwrap_err();
        assert!(e.message.contains("overflow"), "{e}");
    }
}
