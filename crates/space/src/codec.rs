//! Packed point codes: mixed-radix encoding of points into `u64`.
//!
//! The explorer's hot loops (History membership, Qpending dedup, Qpriority
//! `contains`) hash points on every lookup. A [`Point`] is a `Vec<usize>`,
//! so each hash walks a heap allocation and each stored key clones one.
//! For every space whose product fits in a `u64` — all the paper's spaces
//! by far — a point is equivalently its row-major linear index, and a
//! `u64` code hashes in a couple of cycles and stores inline.
//!
//! The encoding is the same mixed-radix scheme as
//! [`FaultSpace::linear_index`](crate::FaultSpace::linear_index): axis 0
//! is the most significant digit. [`PointCodec::for_space`] returns `None`
//! when the product overflows `u64`, and callers fall back to hashing
//! whole points.

use crate::point::Point;
use crate::space::FaultSpace;

/// A bijection between a space's points and `0..space.len()` codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointCodec {
    /// Cardinality of each axis (the radix of each digit).
    radices: Vec<u64>,
}

impl PointCodec {
    /// Builds the codec for `space`, or `None` if the product of axis
    /// cardinalities overflows `u64` (no compact code exists).
    pub fn for_space(space: &FaultSpace) -> Option<Self> {
        let mut total: u64 = 1;
        let mut radices = Vec::with_capacity(space.arity());
        for axis in space.axes() {
            let n = axis.len() as u64;
            total = total.checked_mul(n)?;
            radices.push(n);
        }
        Some(PointCodec { radices })
    }

    /// Number of axes the codec encodes.
    pub fn arity(&self) -> usize {
        self.radices.len()
    }

    /// Encodes a point as its mixed-radix code.
    ///
    /// # Panics
    ///
    /// Debug-asserts arity and per-axis range; out-of-space points are a
    /// caller bug (everything inserted into the queues is validated by
    /// the space first).
    #[inline]
    pub fn encode(&self, p: &Point) -> u64 {
        debug_assert_eq!(p.arity(), self.radices.len(), "codec arity mismatch");
        let mut code: u64 = 0;
        for (&a, &radix) in p.attrs().iter().zip(&self.radices) {
            debug_assert!((a as u64) < radix, "attribute {a} out of radix {radix}");
            code = code * radix + a as u64;
        }
        code
    }

    /// Decodes a code back into its point (inverse of [`Self::encode`]).
    pub fn decode(&self, mut code: u64) -> Point {
        let mut attrs = vec![0usize; self.radices.len()];
        for (slot, &radix) in attrs.iter_mut().zip(&self.radices).rev() {
            *slot = (code % radix) as usize;
            code /= radix;
        }
        Point::new(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn space() -> FaultSpace {
        FaultSpace::new(vec![
            Axis::symbolic("function", ["open", "close", "read"]),
            Axis::int_range("callNumber", 1, 4),
            Axis::symbolic("retval", ["-1", "0"]),
        ])
        .unwrap()
    }

    #[test]
    fn codes_match_linear_index() {
        let s = space();
        let codec = PointCodec::for_space(&s).unwrap();
        for p in s.iter_points() {
            assert_eq!(codec.encode(&p), s.linear_index(&p).unwrap());
        }
    }

    #[test]
    fn roundtrips_every_point() {
        let s = space();
        let codec = PointCodec::for_space(&s).unwrap();
        for p in s.iter_points() {
            assert_eq!(codec.decode(codec.encode(&p)), p);
        }
    }

    #[test]
    fn codes_are_distinct() {
        let s = space();
        let codec = PointCodec::for_space(&s).unwrap();
        let codes: std::collections::HashSet<u64> =
            s.iter_points().map(|p| codec.encode(&p)).collect();
        assert_eq!(codes.len() as u64, s.len());
    }

    #[test]
    fn overflowing_product_has_no_codec() {
        // 100^10 = 1e20 > u64::MAX ≈ 1.8e19: no compact code exists.
        let axes: Vec<Axis> = (0..10)
            .map(|i| Axis::int_range(format!("a{i}"), 0, 99))
            .collect();
        let s = FaultSpace::new(axes).unwrap();
        assert!(PointCodec::for_space(&s).is_none());
    }
}
