//! Totally-ordered fault-space axes.
//!
//! §2 of the paper: "a fault space Φ is spanned by axes X1, X2, ... XN,
//! meaning Φ = X1 × X2 × .. × XN, where each axis Xi is a totally ordered
//! set with elements from Ai and order ≺i". An [`Axis`] owns the value set
//! `Ai` together with its order; attribute values are referred to by their
//! index under that order.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single attribute value on an axis.
///
/// Values are either symbolic (e.g. a libc function name, an errno mnemonic)
/// or integral (e.g. a call number). The total order on an axis is the order
/// in which values were listed when the axis was built, matching the paper's
/// "if there is no intrinsic total order, then we can pick a convenient one".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// A symbolic value, such as `close` or `ENOMEM`.
    Sym(String),
    /// An integral value, such as a call number.
    Int(i64),
}

impl Value {
    /// Returns the symbolic content, if this is a [`Value::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Returns the integral content, if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Sym(_) => None,
            Value::Int(n) => Some(*n),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => f.write_str(s),
            Value::Int(n) => write!(f, "{n}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Sym(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Sym(s)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

/// How an axis was declared in the descriptor language (Fig. 3).
///
/// The distinction matters for fault selection: `[a, b]` intervals are
/// sampled for a single number, while `<a, b>` intervals are sampled for
/// entire sub-intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisKind {
    /// An explicit `{ v1, v2, ... }` value set.
    Set,
    /// A `[lo, hi]` interval sampled for single numbers.
    Interval,
    /// A `<lo, hi>` interval sampled for sub-intervals.
    SubInterval,
}

/// One totally-ordered axis `Xi` of a fault space.
///
/// # Examples
///
/// ```
/// use afex_space::Axis;
///
/// let func = Axis::symbolic("function", ["open", "close", "read"]);
/// assert_eq!(func.len(), 3);
/// assert_eq!(func.index_of_sym("close"), Some(1));
///
/// let call = Axis::int_range("callNumber", 1, 100);
/// assert_eq!(call.len(), 100);
/// assert_eq!(call.value(4).as_int(), Some(5));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    name: String,
    values: Vec<Value>,
    kind: AxisKind,
}

impl Axis {
    /// Creates an axis from an explicit ordered value list.
    ///
    /// The iteration order of `values` defines the total order `≺i`.
    pub fn new(name: impl Into<String>, values: Vec<Value>, kind: AxisKind) -> Self {
        Axis {
            name: name.into(),
            values,
            kind,
        }
    }

    /// Creates a symbolic set axis, e.g. libc function names.
    pub fn symbolic<I, S>(name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Axis::new(
            name,
            values.into_iter().map(|s| Value::Sym(s.into())).collect(),
            AxisKind::Set,
        )
    }

    /// Creates an integral axis covering `lo..=hi` (interval kind).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "interval bounds must satisfy lo <= hi");
        Axis::new(
            name,
            (lo..=hi).map(Value::Int).collect(),
            AxisKind::Interval,
        )
    }

    /// Creates an integral axis covering `lo..=hi`, declared as a
    /// sub-interval (`< >`) axis.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_subinterval(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "interval bounds must satisfy lo <= hi");
        Axis::new(
            name,
            (lo..=hi).map(Value::Int).collect(),
            AxisKind::SubInterval,
        )
    }

    /// The axis name (attribute name in the descriptor language).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declaration kind of this axis.
    pub fn kind(&self) -> AxisKind {
        self.kind
    }

    /// Cardinality `|Ai|` of the axis.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the axis holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at the given index under the axis order.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn value(&self, index: usize) -> &Value {
        &self.values[index]
    }

    /// All values in axis order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The index of a value under the axis order, if present.
    pub fn index_of(&self, v: &Value) -> Option<usize> {
        self.values.iter().position(|x| x == v)
    }

    /// The index of a symbolic value, if present.
    pub fn index_of_sym(&self, s: &str) -> Option<usize> {
        self.values.iter().position(|x| x.as_sym() == Some(s))
    }

    /// The index of an integral value, if present.
    pub fn index_of_int(&self, n: i64) -> Option<usize> {
        self.values.iter().position(|x| x.as_int() == Some(n))
    }

    /// Returns a copy of this axis with its values permuted by `perm`,
    /// destroying any structure along the axis (Table 4 experiment).
    ///
    /// `perm[i]` gives the old index of the value placed at new index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..self.len()`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.len(), "permutation length mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "not a permutation");
            seen[p] = true;
        }
        Axis {
            name: self.name.clone(),
            values: perm.iter().map(|&i| self.values[i].clone()).collect(),
            kind: self.kind,
        }
    }

    /// Restricts the axis to the values whose indices are in `keep`,
    /// preserving order. Used for fault-space trimming (§7.5).
    pub fn restricted(&self, keep: &[usize]) -> Self {
        Axis {
            name: self.name.clone(),
            values: keep
                .iter()
                .filter_map(|&i| self.values.get(i).cloned())
                .collect(),
            kind: self.kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_axis_order_and_lookup() {
        let a = Axis::symbolic("function", ["open", "close", "read"]);
        assert_eq!(a.name(), "function");
        assert_eq!(a.len(), 3);
        assert_eq!(a.index_of_sym("open"), Some(0));
        assert_eq!(a.index_of_sym("read"), Some(2));
        assert_eq!(a.index_of_sym("write"), None);
        assert_eq!(a.value(1), &Value::Sym("close".into()));
        assert_eq!(a.kind(), AxisKind::Set);
    }

    #[test]
    fn int_range_axis() {
        let a = Axis::int_range("callNumber", 1, 5);
        assert_eq!(a.len(), 5);
        assert_eq!(a.index_of_int(1), Some(0));
        assert_eq!(a.index_of_int(5), Some(4));
        assert_eq!(a.index_of_int(6), None);
        assert_eq!(a.kind(), AxisKind::Interval);
    }

    #[test]
    fn subinterval_kind_is_tracked() {
        let a = Axis::int_subinterval("window", 1, 50);
        assert_eq!(a.kind(), AxisKind::SubInterval);
        assert_eq!(a.len(), 50);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn int_range_rejects_inverted_bounds() {
        let _ = Axis::int_range("x", 5, 1);
    }

    #[test]
    fn index_of_generic_value() {
        let a = Axis::new(
            "mixed",
            vec![Value::Sym("a".into()), Value::Int(7)],
            AxisKind::Set,
        );
        assert_eq!(a.index_of(&Value::Int(7)), Some(1));
        assert_eq!(a.index_of(&Value::Sym("b".into())), None);
    }

    #[test]
    fn permuted_reorders_values() {
        let a = Axis::symbolic("f", ["x", "y", "z"]);
        let p = a.permuted(&[2, 0, 1]);
        assert_eq!(p.value(0).as_sym(), Some("z"));
        assert_eq!(p.value(1).as_sym(), Some("x"));
        assert_eq!(p.value(2).as_sym(), Some("y"));
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permuted_rejects_duplicates() {
        let a = Axis::symbolic("f", ["x", "y", "z"]);
        let _ = a.permuted(&[0, 0, 1]);
    }

    #[test]
    fn restricted_keeps_subset_in_order() {
        let a = Axis::int_range("n", 1, 10);
        let r = a.restricted(&[0, 4, 9]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.value(1).as_int(), Some(5));
        assert_eq!(r.value(2).as_int(), Some(10));
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Sym("close".into()).to_string(), "close");
        assert_eq!(Value::Int(-1).to_string(), "-1");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x"), Value::Sym("x".into()));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::Int(3).as_sym(), None);
        assert_eq!(Value::Sym("x".into()).as_int(), None);
    }
}
