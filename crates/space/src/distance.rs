//! Manhattan distance and D-vicinities (§2).
//!
//! The paper measures proximity of faults with the Manhattan (city-block)
//! distance `δ`: the smallest number of attribute-index increments or
//! decrements turning one fault into another. The *D-vicinity* of `φ` is
//! the set of faults within distance `D` of `φ`.

use crate::point::Point;
use crate::space::FaultSpace;

/// Manhattan distance `δ(φ, φ'')` between two faults.
///
/// # Panics
///
/// Panics if the points have different arities.
///
/// # Examples
///
/// ```
/// use afex_space::{manhattan, Point};
///
/// let a = Point::new(vec![2, 5, 1]);
/// let b = Point::new(vec![2, 7, 0]);
/// assert_eq!(manhattan(&a, &b), 3);
/// ```
pub fn manhattan(a: &Point, b: &Point) -> u64 {
    assert_eq!(a.arity(), b.arity(), "points must have equal arity");
    a.attrs()
        .iter()
        .zip(b.attrs())
        .map(|(&x, &y)| x.abs_diff(y) as u64)
        .sum()
}

/// Iterator over the D-vicinity of a center fault: every point of the space
/// whose Manhattan distance to the center is at most `D`.
///
/// Enumeration is depth-first over axes, visiting each vicinity member
/// exactly once, in lexicographic order of attribute indices. The center
/// itself is included (distance 0).
///
/// # Examples
///
/// ```
/// use afex_space::{Axis, FaultSpace, Point, Vicinity};
///
/// let space = FaultSpace::new(vec![
///     Axis::int_range("x", 0, 9),
///     Axis::int_range("y", 0, 9),
/// ])
/// .unwrap();
/// let center = Point::new(vec![5, 5]);
/// let v: Vec<_> = Vicinity::new(&space, &center, 1).collect();
/// // Center plus 4 axis-neighbors.
/// assert_eq!(v.len(), 5);
/// ```
pub struct Vicinity<'s> {
    space: &'s FaultSpace,
    center: Point,
    radius: u64,
    stack: Vec<Frame>,
    current: Vec<usize>,
    done: bool,
}

struct Frame {
    axis: usize,
    next_value: usize,
    budget_before: u64,
}

impl<'s> Vicinity<'s> {
    /// Creates the D-vicinity iterator for `center` with radius `radius`.
    ///
    /// # Panics
    ///
    /// Panics if `center` does not address `space`.
    pub fn new(space: &'s FaultSpace, center: &Point, radius: u64) -> Self {
        space
            .check(center)
            .expect("vicinity center must address the space");
        Vicinity {
            space,
            center: center.clone(),
            radius,
            stack: Vec::new(),
            current: vec![0; space.arity()],
            done: false,
        }
    }

    /// Remaining distance budget after fixing axes `0..axis` to the choices
    /// in `self.current`.
    fn spent(&self, upto_axis: usize) -> u64 {
        self.current[..upto_axis]
            .iter()
            .zip(self.center.attrs())
            .map(|(&v, &c)| v.abs_diff(c) as u64)
            .sum()
    }
}

impl Iterator for Vicinity<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let arity = self.space.arity();
        // Initialize: push the first frame.
        if self.stack.is_empty() {
            self.stack.push(Frame {
                axis: 0,
                next_value: 0,
                budget_before: self.radius,
            });
        }
        loop {
            let Some(frame) = self.stack.last_mut() else {
                self.done = true;
                return None;
            };
            let axis = frame.axis;
            let axis_len = self.space.axis(axis).len();
            let center_v = self.center[axis];
            let budget = frame.budget_before;
            // Advance to the next in-budget value on this axis.
            let mut v = frame.next_value;
            while v < axis_len && (v.abs_diff(center_v) as u64) > budget {
                v += 1;
            }
            if v >= axis_len {
                // Exhausted this axis; backtrack.
                self.stack.pop();
                continue;
            }
            frame.next_value = v + 1;
            self.current[axis] = v;
            let remaining = budget - v.abs_diff(center_v) as u64;
            if axis + 1 == arity {
                debug_assert_eq!(self.spent(arity), self.radius - remaining);
                return Some(Point::new(self.current.clone()));
            }
            self.stack.push(Frame {
                axis: axis + 1,
                next_value: 0,
                budget_before: remaining,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    fn grid(w: i64, h: i64) -> FaultSpace {
        FaultSpace::new(vec![
            Axis::int_range("x", 0, w - 1),
            Axis::int_range("y", 0, h - 1),
        ])
        .unwrap()
    }

    #[test]
    fn manhattan_basics() {
        let a = Point::new(vec![0, 0, 0]);
        let b = Point::new(vec![1, 2, 3]);
        assert_eq!(manhattan(&a, &b), 6);
        assert_eq!(manhattan(&a, &a), 0);
        assert_eq!(manhattan(&b, &a), 6);
    }

    #[test]
    #[should_panic(expected = "equal arity")]
    fn manhattan_rejects_arity_mismatch() {
        let _ = manhattan(&Point::new(vec![0]), &Point::new(vec![0, 1]));
    }

    #[test]
    fn vicinity_radius_zero_is_center_only() {
        let s = grid(10, 10);
        let c = Point::new(vec![4, 4]);
        let v: Vec<_> = Vicinity::new(&s, &c, 0).collect();
        assert_eq!(v, vec![c]);
    }

    #[test]
    fn vicinity_counts_match_brute_force() {
        let s = grid(8, 8);
        let c = Point::new(vec![3, 5]);
        for d in 0..6 {
            let via_iter: std::collections::HashSet<_> = Vicinity::new(&s, &c, d).collect();
            let brute: std::collections::HashSet<_> =
                s.iter_points().filter(|p| manhattan(p, &c) <= d).collect();
            assert_eq!(via_iter, brute, "radius {d}");
        }
    }

    #[test]
    fn vicinity_is_clipped_at_space_borders() {
        let s = grid(3, 3);
        let corner = Point::new(vec![0, 0]);
        let v: Vec<_> = Vicinity::new(&s, &corner, 2).collect();
        // Points with x+y <= 2 inside a 3x3 grid: (0,0),(0,1),(0,2),(1,0),(1,1),(2,0).
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn vicinity_no_duplicates_high_dim() {
        let s = FaultSpace::new(vec![
            Axis::int_range("a", 0, 4),
            Axis::int_range("b", 0, 4),
            Axis::int_range("c", 0, 4),
        ])
        .unwrap();
        let c = Point::new(vec![2, 2, 2]);
        let pts: Vec<_> = Vicinity::new(&s, &c, 3).collect();
        let set: std::collections::HashSet<_> = pts.iter().cloned().collect();
        assert_eq!(pts.len(), set.len());
        assert!(pts.iter().all(|p| manhattan(p, &c) <= 3));
    }

    #[test]
    #[should_panic(expected = "vicinity center")]
    fn vicinity_rejects_foreign_center() {
        let s = grid(2, 2);
        let _ = Vicinity::new(&s, &Point::new(vec![9, 9]), 1);
    }
}
