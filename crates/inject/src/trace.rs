//! Explicit call-stack maintenance for injection-point stack traces.
//!
//! §5: "While executing a test that injects fault φ, AFEX captures the
//! stack trace corresponding to φ's injection point." The real system reads
//! the trace from the process; our in-process targets maintain it
//! explicitly, pushing a frame on function entry via an RAII [`FrameGuard`]
//! that pops on scope exit — including unwinding panics, so crash traces
//! stay accurate.

use std::cell::RefCell;

/// A call stack of function-name frames.
///
/// Interior mutability keeps the push/pop API usable behind shared
/// references, matching how the injection environment is threaded through
/// target code; targets are single-threaded per test execution.
///
/// # Examples
///
/// ```
/// use afex_inject::CallStack;
///
/// let stack = CallStack::new();
/// {
///     let _main = stack.push("main");
///     let _f = stack.push("mi_create");
///     assert_eq!(stack.snapshot(), vec!["main", "mi_create"]);
/// }
/// assert!(stack.snapshot().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct CallStack {
    frames: RefCell<Vec<String>>,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CallStack::default()
    }

    /// Pushes a frame; the frame pops when the returned guard drops.
    pub fn push(&self, name: impl Into<String>) -> FrameGuard<'_> {
        self.frames.borrow_mut().push(name.into());
        FrameGuard { stack: self }
    }

    /// The current frames, outermost first.
    pub fn snapshot(&self) -> Vec<String> {
        self.frames.borrow().clone()
    }

    /// Current stack depth.
    pub fn depth(&self) -> usize {
        self.frames.borrow().len()
    }

    /// Renders the stack as `main>parse>mi_create`, the flat form used for
    /// Levenshtein-based redundancy clustering.
    pub fn render(&self) -> String {
        self.frames.borrow().join(">")
    }
}

/// RAII guard popping one [`CallStack`] frame on drop.
#[derive(Debug)]
pub struct FrameGuard<'s> {
    stack: &'s CallStack,
}

impl Drop for FrameGuard<'_> {
    fn drop(&mut self) {
        let popped = self.stack.frames.borrow_mut().pop();
        debug_assert!(popped.is_some(), "frame guard dropped on empty stack");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_nesting() {
        let s = CallStack::new();
        let _a = s.push("a");
        {
            let _b = s.push("b");
            assert_eq!(s.depth(), 2);
            assert_eq!(s.render(), "a>b");
        }
        assert_eq!(s.depth(), 1);
        assert_eq!(s.render(), "a");
    }

    #[test]
    fn snapshot_is_outermost_first() {
        let s = CallStack::new();
        let _a = s.push("outer");
        let _b = s.push("inner");
        assert_eq!(s.snapshot(), vec!["outer", "inner"]);
    }

    #[test]
    fn guards_pop_in_any_drop_order_scope() {
        let s = CallStack::new();
        {
            let _x = s.push("x");
            let _y = s.push("y");
            // Both dropped at scope end, in reverse declaration order.
        }
        assert_eq!(s.depth(), 0);
    }

    #[test]
    fn frames_pop_during_unwind() {
        let s = CallStack::new();
        let _outer = s.push("outer");
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _inner = s.push("inner");
            panic!("simulated crash");
        }));
        assert!(result.is_err());
        // The inner frame unwound; the outer frame survives.
        assert_eq!(s.render(), "outer");
    }

    #[test]
    fn empty_render() {
        assert_eq!(CallStack::new().render(), "");
    }
}
