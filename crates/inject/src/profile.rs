//! `ltrace`-style profiling to define fault spaces.
//!
//! §7, Fault Space Definition Methodology: "we first run the default test
//! suites that ship with our test targets, and use the ltrace library-call
//! tracer to identify the calls that our target makes to libc and count how
//! many times each libc function is called. We then use LFI's callsite
//! analyzer [...] to obtain a fault profile for each libc function."
//!
//! [`Profiler`] runs a workload under a fault-free [`LibcEnv`], records the
//! per-function call counts, and emits a fault-space descriptor (in the
//! Fig. 3 language) restricted to the functions actually called.

use crate::env::LibcEnv;
use crate::libc_model::Func;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-function call counts observed while profiling a workload.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallProfile {
    counts: BTreeMap<Func, u32>,
}

impl CallProfile {
    /// Builds a profile from observed counts.
    pub fn from_counts(counts: impl IntoIterator<Item = (Func, u32)>) -> Self {
        CallProfile {
            counts: counts.into_iter().filter(|&(_, c)| c > 0).collect(),
        }
    }

    /// Functions observed, in canonical order.
    pub fn functions(&self) -> Vec<Func> {
        let mut fns: Vec<Func> = self.counts.keys().copied().collect();
        fns.sort_by_key(|f| Func::ALL.iter().position(|g| g == f));
        fns
    }

    /// Calls observed for one function.
    pub fn count(&self, f: Func) -> u32 {
        self.counts.get(&f).copied().unwrap_or(0)
    }

    /// Total calls observed.
    pub fn total_calls(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Merges another profile (e.g. across a whole test suite), keeping the
    /// maximum per-function count — the deepest call number ever reachable.
    pub fn merge_max(&mut self, other: &CallProfile) {
        for (&f, &c) in &other.counts {
            let e = self.counts.entry(f).or_insert(0);
            *e = (*e).max(c);
        }
    }

    /// Renders a Fig. 3-language fault-space descriptor: one subspace per
    /// observed function, with the function's profiled errnos and the call
    /// numbers capped at `max_call` (0 = no cap).
    pub fn to_descriptor(&self, max_call: u32) -> String {
        let mut out = String::new();
        for f in self.functions() {
            let profile = f.fault_profile();
            let calls = if max_call == 0 {
                self.count(f)
            } else {
                self.count(f).min(max_call)
            };
            if calls == 0 {
                continue;
            }
            let errnos: Vec<&str> = profile.errnos.iter().map(|e| e.name()).collect();
            out.push_str(&format!(
                "function : {{ {} }}\nerrno : {{ {} }}\nretval : {{ {} }}\ncallNumber : [ 1 , {} ] ;\n",
                f.name(),
                errnos.join(", "),
                profile.error_retval,
                calls
            ));
        }
        out
    }
}

/// Profiles workloads by running them against a fault-free environment.
#[derive(Debug, Default)]
pub struct Profiler {
    profile: CallProfile,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Runs one workload under a fresh fault-free environment and folds its
    /// call counts into the profile (max per function across workloads).
    pub fn run<W>(&mut self, workload: W)
    where
        W: FnOnce(&LibcEnv),
    {
        let env = LibcEnv::fault_free();
        workload(&env);
        let observed = CallProfile::from_counts(env.call_counts());
        self.profile.merge_max(&observed);
    }

    /// The accumulated profile.
    pub fn profile(&self) -> &CallProfile {
        &self.profile
    }

    /// Consumes the profiler, returning the profile.
    pub fn into_profile(self) -> CallProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libc_model::Func;

    #[test]
    fn profiler_counts_calls() {
        let mut p = Profiler::new();
        p.run(|env| {
            env.call(Func::Open);
            env.call(Func::Read);
            env.call(Func::Read);
            env.call(Func::Close);
        });
        let prof = p.profile();
        assert_eq!(prof.count(Func::Read), 2);
        assert_eq!(prof.count(Func::Open), 1);
        assert_eq!(prof.count(Func::Malloc), 0);
        assert_eq!(prof.total_calls(), 4);
    }

    #[test]
    fn merge_max_takes_deepest_counts() {
        let mut p = Profiler::new();
        p.run(|env| {
            env.call(Func::Malloc);
            env.call(Func::Malloc);
        });
        p.run(|env| {
            env.call(Func::Malloc);
            env.call(Func::Read);
        });
        assert_eq!(p.profile().count(Func::Malloc), 2);
        assert_eq!(p.profile().count(Func::Read), 1);
    }

    #[test]
    fn descriptor_is_parseable_and_sized_right() {
        let mut p = Profiler::new();
        p.run(|env| {
            for _ in 0..5 {
                env.call(Func::Malloc);
            }
            env.call(Func::Read);
        });
        let desc_text = p.profile().to_descriptor(0);
        let desc = afex_space::parse(&desc_text).expect("descriptor must parse");
        // malloc: 1 errno × 5 calls; read: 4 errnos × 1 call.
        assert_eq!(desc.total_points(), 5 + 4);
    }

    #[test]
    fn descriptor_caps_call_numbers() {
        let mut p = Profiler::new();
        p.run(|env| {
            for _ in 0..500 {
                env.call(Func::Malloc);
            }
        });
        let desc = afex_space::parse(&p.profile().to_descriptor(100)).unwrap();
        assert_eq!(desc.total_points(), 100);
    }

    #[test]
    fn functions_in_canonical_order() {
        let prof = CallProfile::from_counts([(Func::Strtol, 1), (Func::Malloc, 1)]);
        assert_eq!(prof.functions(), vec![Func::Malloc, Func::Strtol]);
    }

    #[test]
    fn zero_counts_are_dropped() {
        let prof = CallProfile::from_counts([(Func::Malloc, 0), (Func::Read, 2)]);
        assert_eq!(prof.functions(), vec![Func::Read]);
    }
}
