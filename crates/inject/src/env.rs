//! The injection environment targets call through.
//!
//! [`LibcEnv`] plays the role of the LFI interposition layer: the simulated
//! target announces every libc call it is about to make; the environment
//! counts calls per function, checks the active [`FaultPlan`], and either
//! lets the call proceed or injects the planned failure — capturing the
//! stack trace at the injection point as it does (§5).

use crate::coverage::Coverage;
use crate::errno::Errno;
use crate::libc_model::Func;
use crate::outcome::InjectionRecord;
use crate::plan::FaultPlan;
use crate::trace::{CallStack, FrameGuard};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// The result of announcing a libc call to the environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallResult {
    /// No fault planned for this call; the operation proceeds normally.
    Ok,
    /// The call fails with this errno; the target must run its error path.
    /// The return value to emulate is the function's profile `error_retval`.
    Fail(Errno),
}

impl CallResult {
    /// Whether the call was failed by the injector.
    pub fn failed(self) -> bool {
        matches!(self, CallResult::Fail(_))
    }
}

/// Per-test injection environment: call counting, fault decisions, stack
/// traces, and coverage.
///
/// One `LibcEnv` is created per test execution and discarded afterwards,
/// so call numbers are deterministic per workload. Methods take `&self`
/// (interior mutability) because the environment is threaded through deep
/// call chains in target code alongside frame guards borrowing it.
///
/// # Examples
///
/// ```
/// use afex_inject::{CallResult, Errno, FaultPlan, Func, LibcEnv};
///
/// let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 2, Errno::ENOMEM));
/// let _main = env.frame("main");
/// assert_eq!(env.call(Func::Malloc), CallResult::Ok); // 1st call fine,
/// assert_eq!(env.call(Func::Malloc), CallResult::Fail(Errno::ENOMEM)); // 2nd fails.
/// assert_eq!(env.injections().len(), 1);
/// assert_eq!(env.injections()[0].stack, vec!["main"]);
/// ```
#[derive(Debug)]
pub struct LibcEnv {
    plan: FaultPlan,
    counts: RefCell<HashMap<Func, u32>>,
    injections: RefCell<Vec<InjectionRecord>>,
    stack: CallStack,
    coverage: RefCell<Coverage>,
    /// Fuel for hang detection: simulated targets that loop on EINTR-style
    /// retries burn fuel; when it runs out the harness declares a hang.
    fuel: Cell<u64>,
}

/// Default retry fuel per test; generous enough that only genuine retry
/// loops exhaust it.
const DEFAULT_FUEL: u64 = 10_000;

impl LibcEnv {
    /// Creates an environment executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        LibcEnv {
            plan,
            counts: RefCell::new(HashMap::new()),
            injections: RefCell::new(Vec::new()),
            stack: CallStack::new(),
            coverage: RefCell::new(Coverage::new()),
            fuel: Cell::new(DEFAULT_FUEL),
        }
    }

    /// A fault-free environment (baseline runs, profiling).
    pub fn fault_free() -> Self {
        LibcEnv::new(FaultPlan::none())
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Announces a call to `func`. Returns [`CallResult::Fail`] iff the
    /// plan targets this (1-based) call of this function; the injection is
    /// recorded with the current stack trace.
    pub fn call(&self, func: Func) -> CallResult {
        let count = {
            let mut counts = self.counts.borrow_mut();
            let c = counts.entry(func).or_insert(0);
            *c += 1;
            *c
        };
        match self.plan.matching(func, count) {
            Some(fault) => {
                self.injections.borrow_mut().push(InjectionRecord {
                    fault: *fault,
                    stack: self.stack.snapshot(),
                });
                CallResult::Fail(fault.errno)
            }
            None => CallResult::Ok,
        }
    }

    /// Records an injection decided outside the plan machinery (e.g. the
    /// VFS fault layer's rule firings), capturing the current stack trace
    /// so rule-driven faults cluster with the same signature machinery as
    /// plan faults.
    pub fn record_injection(&self, fault: crate::plan::AtomicFault) {
        self.injections.borrow_mut().push(InjectionRecord {
            fault,
            stack: self.stack.snapshot(),
        });
    }

    /// Pushes a stack frame for trace capture; pops when the guard drops.
    pub fn frame(&self, name: &str) -> FrameGuard<'_> {
        self.stack.push(name)
    }

    /// Marks basic block `id` of `module` as covered.
    pub fn block(&self, module: &str, id: u32) {
        self.coverage.borrow_mut().mark(module, id);
    }

    /// Burns one unit of retry fuel; returns `false` when exhausted, which
    /// targets translate into a hang (simulating a watchdog timeout).
    pub fn burn_fuel(&self) -> bool {
        let f = self.fuel.get();
        if f == 0 {
            return false;
        }
        self.fuel.set(f - 1);
        true
    }

    /// How many calls to `func` have been announced so far.
    pub fn call_count(&self, func: Func) -> u32 {
        self.counts.borrow().get(&func).copied().unwrap_or(0)
    }

    /// All per-function call counts (the `ltrace` view).
    pub fn call_counts(&self) -> HashMap<Func, u32> {
        self.counts.borrow().clone()
    }

    /// The injections performed so far.
    pub fn injections(&self) -> Vec<InjectionRecord> {
        self.injections.borrow().clone()
    }

    /// The coverage collected so far.
    pub fn coverage(&self) -> Coverage {
        self.coverage.borrow().clone()
    }

    /// Current stack rendering (used in crash messages).
    pub fn stack_trace(&self) -> String {
        self.stack.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_per_function() {
        let env = LibcEnv::fault_free();
        env.call(Func::Malloc);
        env.call(Func::Malloc);
        env.call(Func::Read);
        assert_eq!(env.call_count(Func::Malloc), 2);
        assert_eq!(env.call_count(Func::Read), 1);
        assert_eq!(env.call_count(Func::Close), 0);
    }

    #[test]
    fn fault_free_env_never_fails() {
        let env = LibcEnv::fault_free();
        for _ in 0..100 {
            assert_eq!(env.call(Func::Malloc), CallResult::Ok);
        }
        assert!(env.injections().is_empty());
    }

    #[test]
    fn injection_hits_exact_call_number() {
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 3, Errno::EINTR));
        assert_eq!(env.call(Func::Read), CallResult::Ok);
        assert_eq!(env.call(Func::Read), CallResult::Ok);
        assert_eq!(env.call(Func::Read), CallResult::Fail(Errno::EINTR));
        assert_eq!(env.call(Func::Read), CallResult::Ok);
        assert_eq!(env.injections().len(), 1);
        assert_eq!(env.injections()[0].fault.call_number, 3);
    }

    #[test]
    fn stack_trace_is_captured_at_injection_point() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fclose, 1, Errno::EIO));
        let _m = env.frame("main");
        {
            let _f = env.frame("flush_log");
            env.call(Func::Fclose);
        }
        let recs = env.injections();
        assert_eq!(recs[0].stack, vec!["main", "flush_log"]);
        // The trace reflects the stack at injection time, not at read time.
        assert_eq!(env.stack_trace(), "main");
    }

    #[test]
    fn multi_fault_plan_injects_each() {
        use crate::plan::AtomicFault;
        let env = LibcEnv::new(FaultPlan::multi(vec![
            AtomicFault::new(Func::Read, 1, Errno::EINTR),
            AtomicFault::new(Func::Malloc, 2, Errno::ENOMEM),
        ]));
        assert!(env.call(Func::Read).failed());
        assert!(!env.call(Func::Malloc).failed());
        assert!(env.call(Func::Malloc).failed());
        assert_eq!(env.injections().len(), 2);
    }

    #[test]
    fn coverage_accumulates() {
        let env = LibcEnv::fault_free();
        env.block("minidb", 1);
        env.block("minidb", 2);
        env.block("minidb", 1);
        assert_eq!(env.coverage().blocks(), 2);
    }

    #[test]
    fn fuel_exhausts() {
        let env = LibcEnv::fault_free();
        let mut burned = 0u64;
        while env.burn_fuel() {
            burned += 1;
            assert!(burned < 1_000_000, "fuel never exhausted");
        }
        assert_eq!(burned, super::DEFAULT_FUEL);
        assert!(!env.burn_fuel());
    }

    #[test]
    fn record_injection_captures_stack() {
        use crate::plan::AtomicFault;
        let env = LibcEnv::fault_free();
        let _m = env.frame("main");
        {
            let _f = env.frame("vfs_write");
            env.record_injection(AtomicFault::new(Func::Write, 4, Errno::EIO));
        }
        let recs = env.injections();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].stack, vec!["main", "vfs_write"]);
        assert_eq!(recs[0].fault.call_number, 4);
    }

    #[test]
    fn call_counts_snapshot() {
        let env = LibcEnv::fault_free();
        env.call(Func::Open);
        env.call(Func::Open);
        let counts = env.call_counts();
        assert_eq!(counts[&Func::Open], 2);
    }
}
