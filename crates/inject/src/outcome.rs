//! Observations from one fault-injection test execution.

use crate::coverage::Coverage;
use crate::plan::AtomicFault;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One performed injection: the atomic fault plus the stack trace captured
/// at the injection point (§5, redundancy clustering input).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// The injected atomic fault.
    pub fault: AtomicFault,
    /// Stack frames at the injection point, outermost first.
    pub stack: Vec<String>,
}

impl InjectionRecord {
    /// The flat `a>b>c>libcfn` rendering used for Levenshtein clustering.
    ///
    /// The innermost frame is the intercepted libc function itself, as in
    /// a real LFI-captured stack trace (the interposition library is on
    /// the stack at injection time).
    pub fn stack_trace(&self) -> String {
        let mut s = self.stack.join(">");
        if !s.is_empty() {
            s.push('>');
        }
        s.push_str(self.fault.func.name());
        s
    }
}

/// Terminal status of one test execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TestStatus {
    /// The test ran to completion and its assertions held.
    Passed,
    /// The test ran to completion but its assertions failed.
    Failed,
    /// The target crashed (panic / segfault analogue), with the message.
    Crashed(String),
    /// The target stopped making progress (watchdog expired).
    Hung,
}

impl TestStatus {
    /// Classifies the wait status of a reaped child process, as decomposed
    /// into its exit code (normal termination) or terminating signal.
    ///
    /// - exit 0 → [`TestStatus::Passed`]: the workload completed and its
    ///   own checks held (graceful recovery from the injected fault, or a
    ///   plan that never triggered).
    /// - nonzero exit → [`TestStatus::Failed`]: the workload detected the
    ///   fault and bailed out deliberately.
    /// - fatal signal → [`TestStatus::Crashed`] named after the signal
    ///   (`SIGSEGV`, `SIGABRT`, …): the recovery code itself broke.
    ///
    /// Watchdog timeouts never reach this function — the executor reports
    /// [`TestStatus::Hung`] directly, since after a SIGKILL the wait
    /// status says "killed" without saying *why*.
    pub fn from_wait(exit_code: Option<i32>, signal: Option<i32>) -> TestStatus {
        match (exit_code, signal) {
            (Some(0), _) => TestStatus::Passed,
            (Some(_), _) => TestStatus::Failed,
            (None, Some(sig)) => TestStatus::Crashed(signal_name(sig)),
            // No exit code and no signal: the platform reported something
            // unclassifiable (e.g. stopped). Treat it as a crash so it is
            // never mistaken for recovery.
            (None, None) => TestStatus::Crashed("unknown wait status".to_owned()),
        }
    }

    /// Whether the run ended in a crash.
    pub fn is_crash(&self) -> bool {
        matches!(self, TestStatus::Crashed(_))
    }

    /// Whether the test did not pass (failed, crashed, or hung).
    pub fn is_failure(&self) -> bool {
        !matches!(self, TestStatus::Passed)
    }
}

impl fmt::Display for TestStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestStatus::Passed => f.write_str("passed"),
            TestStatus::Failed => f.write_str("failed"),
            TestStatus::Crashed(m) => write!(f, "crashed: {m}"),
            TestStatus::Hung => f.write_str("hung"),
        }
    }
}

/// Symbolic name of a Linux fatal signal, `"signal {n}"` for the rest.
///
/// Covers the signals a fault-injected child realistically dies from:
/// memory errors (SIGSEGV/SIGBUS), aborts, arithmetic faults, rlimit
/// kills (SIGXCPU/SIGXFSZ), and the watchdog's own SIGTERM/SIGKILL.
pub fn signal_name(sig: i32) -> String {
    let name = match sig {
        1 => "SIGHUP",
        2 => "SIGINT",
        3 => "SIGQUIT",
        4 => "SIGILL",
        5 => "SIGTRAP",
        6 => "SIGABRT",
        7 => "SIGBUS",
        8 => "SIGFPE",
        9 => "SIGKILL",
        11 => "SIGSEGV",
        13 => "SIGPIPE",
        14 => "SIGALRM",
        15 => "SIGTERM",
        24 => "SIGXCPU",
        25 => "SIGXFSZ",
        31 => "SIGSYS",
        _ => return format!("signal {sig}"),
    };
    name.to_owned()
}

/// Everything observed while executing one fault-injection test.
///
/// This is what a node manager's sensors report back to the explorer; the
/// impact metric is computed from it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// Identifier of the workload/test that ran (the `testID` axis).
    pub test_id: usize,
    /// Terminal status.
    pub status: TestStatus,
    /// Blocks covered during the run.
    pub coverage: Coverage,
    /// Faults actually injected (empty if the plan never triggered).
    pub injections: Vec<InjectionRecord>,
}

impl TestOutcome {
    /// Stack trace of the first injection, if any — the §5 clustering key.
    /// Tests whose plan never triggered have no injection-point trace.
    pub fn injection_trace(&self) -> Option<String> {
        self.injections.first().map(InjectionRecord::stack_trace)
    }

    /// Whether the planned fault actually got injected. Plans that target
    /// a call number beyond what the workload performs never trigger; such
    /// tests exercise nothing and score zero impact.
    pub fn triggered(&self) -> bool {
        !self.injections.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errno::Errno;
    use crate::libc_model::Func;

    fn rec(frames: &[&str]) -> InjectionRecord {
        InjectionRecord {
            fault: AtomicFault::new(Func::Malloc, 1, Errno::ENOMEM),
            stack: frames.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn stack_trace_rendering() {
        assert_eq!(rec(&["main", "f", "g"]).stack_trace(), "main>f>g>malloc");
        assert_eq!(rec(&[]).stack_trace(), "malloc");
    }

    #[test]
    fn status_predicates() {
        assert!(!TestStatus::Passed.is_failure());
        assert!(TestStatus::Failed.is_failure());
        assert!(TestStatus::Hung.is_failure());
        let c = TestStatus::Crashed("segfault".into());
        assert!(c.is_failure());
        assert!(c.is_crash());
        assert!(!TestStatus::Failed.is_crash());
    }

    #[test]
    fn outcome_trace_and_trigger() {
        let o = TestOutcome {
            test_id: 3,
            status: TestStatus::Failed,
            coverage: Coverage::new(),
            injections: vec![rec(&["main", "open_db"])],
        };
        assert!(o.triggered());
        assert_eq!(o.injection_trace().unwrap(), "main>open_db>malloc");

        let none = TestOutcome {
            test_id: 3,
            status: TestStatus::Passed,
            coverage: Coverage::new(),
            injections: vec![],
        };
        assert!(!none.triggered());
        assert_eq!(none.injection_trace(), None);
    }

    #[test]
    fn wait_status_classification() {
        assert_eq!(TestStatus::from_wait(Some(0), None), TestStatus::Passed);
        assert_eq!(TestStatus::from_wait(Some(1), None), TestStatus::Failed);
        assert_eq!(TestStatus::from_wait(Some(2), None), TestStatus::Failed);
        assert_eq!(
            TestStatus::from_wait(None, Some(11)),
            TestStatus::Crashed("SIGSEGV".into())
        );
        assert_eq!(
            TestStatus::from_wait(None, Some(6)),
            TestStatus::Crashed("SIGABRT".into())
        );
        assert!(TestStatus::from_wait(None, None).is_crash());
    }

    #[test]
    fn signal_names() {
        assert_eq!(signal_name(11), "SIGSEGV");
        assert_eq!(signal_name(9), "SIGKILL");
        assert_eq!(signal_name(24), "SIGXCPU");
        assert_eq!(signal_name(64), "signal 64");
    }

    #[test]
    fn status_display() {
        assert_eq!(TestStatus::Passed.to_string(), "passed");
        assert_eq!(
            TestStatus::Crashed("boom".into()).to_string(),
            "crashed: boom"
        );
    }
}
