//! Basic-block coverage accounting.
//!
//! The paper measures code coverage with the targets' own tooling (gcov);
//! our simulated targets mark explicit basic blocks instead. A block is a
//! `(module, id)` pair; targets call [`Coverage::mark`] at each block entry,
//! and the impact metric consumes block counts (§7: "we use a combination
//! of code coverage and exit code of the test suite").

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A set of covered basic blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Coverage {
    hit: HashSet<(String, u32)>,
}

impl Coverage {
    /// Creates empty coverage.
    pub fn new() -> Self {
        Coverage::default()
    }

    /// Marks block `id` of `module` as covered.
    pub fn mark(&mut self, module: &str, id: u32) {
        self.hit.insert((module.to_owned(), id));
    }

    /// Whether a specific block was covered.
    pub fn covers(&self, module: &str, id: u32) -> bool {
        self.hit.contains(&(module.to_owned(), id))
    }

    /// Number of distinct blocks covered.
    pub fn blocks(&self) -> usize {
        self.hit.len()
    }

    /// Number of distinct blocks covered in one module.
    pub fn blocks_in(&self, module: &str) -> usize {
        self.hit.iter().filter(|(m, _)| m == module).count()
    }

    /// Coverage as a fraction of `total` declared blocks, in percent.
    /// Returns 0 when `total` is 0.
    pub fn percent_of(&self, total: usize) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.hit.len() as f64 * 100.0 / total as f64
        }
    }

    /// Merges another coverage set into this one (suite-level accumulation).
    pub fn merge(&mut self, other: &Coverage) {
        for b in &other.hit {
            self.hit.insert(b.clone());
        }
    }

    /// Blocks covered by `self` but not `other` — used to quantify the
    /// *recovery code* surplus that fault injection buys (§7.2).
    pub fn difference(&self, other: &Coverage) -> usize {
        self.hit.iter().filter(|b| !other.hit.contains(*b)).count()
    }

    /// Iterates over covered blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.hit.iter().map(|(m, i)| (m.as_str(), *i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_is_idempotent() {
        let mut c = Coverage::new();
        c.mark("m", 1);
        c.mark("m", 1);
        c.mark("m", 2);
        assert_eq!(c.blocks(), 2);
        assert!(c.covers("m", 1));
        assert!(!c.covers("m", 3));
    }

    #[test]
    fn modules_are_distinct() {
        let mut c = Coverage::new();
        c.mark("a", 1);
        c.mark("b", 1);
        assert_eq!(c.blocks(), 2);
        assert_eq!(c.blocks_in("a"), 1);
        assert_eq!(c.blocks_in("c"), 0);
    }

    #[test]
    fn percent_of_total() {
        let mut c = Coverage::new();
        c.mark("m", 1);
        c.mark("m", 2);
        assert!((c.percent_of(8) - 25.0).abs() < 1e-9);
        assert_eq!(c.percent_of(0), 0.0);
    }

    #[test]
    fn merge_unions() {
        let mut a = Coverage::new();
        a.mark("m", 1);
        let mut b = Coverage::new();
        b.mark("m", 2);
        b.mark("m", 1);
        a.merge(&b);
        assert_eq!(a.blocks(), 2);
    }

    #[test]
    fn difference_counts_surplus() {
        let mut with_fi = Coverage::new();
        with_fi.mark("m", 1);
        with_fi.mark("m", 99); // Recovery block.
        let mut without = Coverage::new();
        without.mark("m", 1);
        assert_eq!(with_fi.difference(&without), 1);
        assert_eq!(without.difference(&with_fi), 0);
    }

    #[test]
    fn iter_lists_blocks() {
        let mut c = Coverage::new();
        c.mark("m", 7);
        let v: Vec<_> = c.iter().collect();
        assert_eq!(v, vec![("m", 7)]);
    }
}
