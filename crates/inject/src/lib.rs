//! Library-level fault-injection substrate for AFEX.
//!
//! The paper evaluates AFEX with LFI, a library-level fault injector that
//! intercepts an application's calls into `libc.so` and makes selected calls
//! fail with chosen error returns and `errno` codes. This crate is the
//! deterministic, in-process equivalent used by the simulated targets in
//! `afex-targets`:
//!
//! - [`libc_model`] — the model of the application–library interface:
//!   [`libc_model::Func`] enumerates intercepted libc functions, with
//!   per-function *fault profiles* (possible error return / errno pairs), as
//!   produced by LFI's callsite analyzer.
//! - [`errno`] — the errno codes injectable at that interface.
//! - [`plan`] — [`plan::FaultPlan`]: which call to which function
//!   fails, with what return value and errno (a fault scenario broken into
//!   atomic faults, §6).
//! - [`mod@env`] — [`env::LibcEnv`]: the facade the simulated targets
//!   call through. It counts calls per function, consults the active plan,
//!   captures the stack trace at each injection point (for redundancy
//!   clustering, §5) and collects basic-block coverage.
//! - [`trace`] — explicit call-stack maintenance via RAII frame guards.
//! - [`coverage`] — basic-block coverage accounting (the gcov substitute).
//! - [`profile`] — the `ltrace`-style profiler used to define fault spaces
//!   (§7, "Fault Space Definition Methodology").
//! - [`outcome`] — what one fault-injection test observed: pass/fail/crash,
//!   coverage, and the injection records.
//!
//! Determinism is the point of the substitution: the same
//! [`plan::FaultPlan`] against the same workload yields the same
//! outcome, which lets the test suite assert exact explorer behaviour.

pub mod coverage;
pub mod env;
pub mod errno;
pub mod libc_model;
pub mod outcome;
pub mod plan;
pub mod profile;
pub mod trace;

pub use coverage::Coverage;
pub use env::{CallResult, LibcEnv};
pub use errno::Errno;
pub use libc_model::{FaultProfile, Func, FuncCategory};
pub use outcome::{InjectionRecord, TestOutcome, TestStatus};
pub use plan::{AtomicFault, FaultPlan};
pub use profile::{CallProfile, Profiler};
pub use trace::{CallStack, FrameGuard};
