//! Model of the application–library interface.
//!
//! [`Func`] enumerates the libc functions intercepted by the injector —
//! the 29 functions visible in Fig. 1 of the paper plus the additional ones
//! the simulated servers (minidb, httpd, docstore) call. Each function has a
//! [`FaultProfile`]: the error return value and the set of plausible errno
//! codes, corresponding to what LFI's callsite analyzer extracts from the
//! `libc.so` binary.

use crate::errno::Errno;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Functional grouping of libc functions.
///
/// §3 notes that grouping "POSIX functions by functionality: file,
/// networking, memory, etc." provides a convenient total order with
/// locality — neighbors on the function axis tend to be implemented (and
/// mishandled) similarly, which is the structure the explorer exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FuncCategory {
    /// Heap management: `malloc`, `calloc`, ...
    Memory,
    /// Buffered stream I/O: `fopen`, `fgets`, ...
    Stream,
    /// File-descriptor I/O: `open`, `read`, ...
    FileDescriptor,
    /// Directory traversal: `opendir`, `chdir`, ...
    Directory,
    /// Sockets: `socket`, `recv`, ...
    Network,
    /// Processes and resources: `wait`, `getrlimit64`, ...
    Process,
    /// Locale and message catalogs: `setlocale`, `textdomain`, ...
    Locale,
    /// Time: `clock_gettime`.
    Time,
    /// String utilities that can allocate or fail: `strtol`, `strdup`.
    String,
}

/// The error return value and plausible errno codes of one libc function,
/// as LFI's callsite analyzer would report them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultProfile {
    /// The value the function returns on failure (`-1`, `0` for NULL, ...).
    pub error_retval: i64,
    /// The errno codes the function can set on failure.
    pub errnos: Vec<Errno>,
}

macro_rules! funcs {
    ($( $variant:ident => ($name:literal, $cat:ident, $retval:literal, [$($e:ident),+ $(,)?]) ),+ $(,)?) => {
        /// A libc function interceptable by the injector.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub enum Func {
            $(
                #[doc = concat!("The `", $name, "` libc function.")]
                $variant,
            )+
        }

        impl Func {
            /// Every modelled function, in the canonical (category-grouped)
            /// total order used for fault-space axes.
            pub const ALL: &'static [Func] = &[ $(Func::$variant),+ ];

            /// The C-level symbol name.
            pub fn name(self) -> &'static str {
                match self {
                    $(Func::$variant => $name),+
                }
            }

            /// The functional category (the basis of the axis order).
            pub fn category(self) -> FuncCategory {
                match self {
                    $(Func::$variant => FuncCategory::$cat),+
                }
            }

            /// The function's fault profile (callsite-analyzer output).
            pub fn fault_profile(self) -> FaultProfile {
                match self {
                    $(Func::$variant => FaultProfile {
                        error_retval: $retval,
                        errnos: vec![$(Errno::$e),+],
                    }),+
                }
            }
        }
    };
}

// The canonical order groups by category, mirroring the paper's
// observation that a functionality-based order yields exploitable
// locality. The first 29 entries are exactly the Fig. 1 function set.
funcs! {
    // Memory.
    Malloc       => ("malloc", Memory, 0, [ENOMEM]),
    Calloc       => ("calloc", Memory, 0, [ENOMEM]),
    Realloc      => ("realloc", Memory, 0, [ENOMEM]),
    // Buffered streams.
    Fopen64      => ("fopen64", Stream, 0, [ENOENT, EACCES, EMFILE, ENFILE, ENOMEM, EINTR]),
    Fopen        => ("fopen", Stream, 0, [ENOENT, EACCES, EMFILE, ENFILE, ENOMEM, EINTR]),
    Fclose       => ("fclose", Stream, -1, [EIO, EBADF, ENOSPC, EINTR]),
    Ferror       => ("ferror", Stream, 1, [EBADF]),
    Fgets        => ("fgets", Stream, 0, [EIO, EINTR, EBADF]),
    Putc         => ("putc", Stream, -1, [EIO, ENOSPC, EPIPE]),
    IoPutc       => ("__IO_putc", Stream, -1, [EIO, ENOSPC, EPIPE]),
    Fflush       => ("fflush", Stream, -1, [EIO, ENOSPC, EBADF, EPIPE]),
    // File descriptors.
    Open         => ("open", FileDescriptor, -1, [ENOENT, EACCES, EMFILE, ENFILE, ENOSPC, EINTR, EISDIR]),
    Read         => ("read", FileDescriptor, -1, [EIO, EINTR, EBADF, EAGAIN]),
    Write        => ("write", FileDescriptor, -1, [EIO, ENOSPC, EINTR, EBADF, EPIPE, EDQUOT]),
    Close        => ("close", FileDescriptor, -1, [EIO, EINTR, EBADF]),
    Lseek        => ("lseek", FileDescriptor, -1, [EBADF, EINVAL, EOVERFLOW]),
    Fsync        => ("fsync", FileDescriptor, -1, [EIO, EBADF, EINVAL]),
    Fcntl        => ("fcntl", FileDescriptor, -1, [EBADF, EINVAL, EMFILE]),
    Stat         => ("stat", FileDescriptor, -1, [ENOENT, EACCES, ENOMEM, ENAMETOOLONG, ELOOP]),
    Xstat64      => ("__xstat64", FileDescriptor, -1, [ENOENT, EACCES, ENOMEM, ENAMETOOLONG, ELOOP]),
    Unlink       => ("unlink", FileDescriptor, -1, [ENOENT, EACCES, EBUSY, EROFS, EISDIR]),
    Rename       => ("rename", FileDescriptor, -1, [ENOENT, EACCES, EBUSY, EINVAL, EROFS]),
    Pipe         => ("pipe", FileDescriptor, -1, [EMFILE, ENFILE]),
    // Directories.
    Opendir      => ("opendir", Directory, 0, [ENOENT, EACCES, EMFILE, ENFILE, ENOMEM, ENOTDIR]),
    Readdir      => ("readdir", Directory, 0, [EBADF]),
    Closedir     => ("closedir", Directory, -1, [EBADF]),
    Chdir        => ("chdir", Directory, -1, [ENOENT, EACCES, ENOTDIR]),
    Mkdir        => ("mkdir", Directory, -1, [EEXIST, EACCES, ENOSPC, EROFS, ENOENT]),
    Rmdir        => ("rmdir", Directory, -1, [ENOENT, EACCES, EBUSY, ENOTDIR]),
    Getcwd       => ("getcwd", Directory, 0, [ENOMEM, EACCES]),
    // Network.
    Socket       => ("socket", Network, -1, [EMFILE, ENFILE, ENOMEM, EACCES]),
    Bind         => ("bind", Network, -1, [EACCES, EINVAL]),
    Listen       => ("listen", Network, -1, [EINVAL]),
    Accept       => ("accept", Network, -1, [EMFILE, ENFILE, ENOMEM, EINTR, EAGAIN, ECONNRESET]),
    Recv         => ("recv", Network, -1, [EINTR, EAGAIN, ECONNRESET, ETIMEDOUT]),
    Send         => ("send", Network, -1, [EINTR, EAGAIN, ECONNRESET, EPIPE, ENOMEM]),
    // Processes and resources.
    Wait         => ("wait", Process, -1, [EINTR, EINVAL]),
    Getrlimit64  => ("getrlimit64", Process, -1, [EINVAL]),
    Setrlimit64  => ("setrlimit64", Process, -1, [EINVAL, EPERM]),
    // Locale.
    Setlocale    => ("setlocale", Locale, 0, [ENOMEM]),
    Bindtextdomain => ("bindtextdomain", Locale, 0, [ENOMEM]),
    Textdomain   => ("textdomain", Locale, 0, [ENOMEM]),
    // Time.
    ClockGettime => ("clock_gettime", Time, -1, [EINVAL]),
    // Strings.
    Strtol       => ("strtol", String, 0, [EINVAL]),
    Strdup       => ("strdup", String, 0, [ENOMEM]),
}

// Note: `rename` across filesystems fails with EXDEV; our errno set folds
// that case into EINVAL.

impl Func {
    /// The 29-function set of Fig. 1 (the `ls` fault-space excerpt),
    /// in the paper's left-to-right order.
    pub const FIG1: [Func; 29] = [
        Func::Wait,
        Func::Malloc,
        Func::Calloc,
        Func::Realloc,
        Func::Fopen64,
        Func::Fopen,
        Func::Fclose,
        Func::Stat,
        Func::Xstat64,
        Func::Ferror,
        Func::Fcntl,
        Func::Fgets,
        Func::Putc,
        Func::IoPutc,
        Func::Read,
        Func::Opendir,
        Func::Closedir,
        Func::Chdir,
        Func::Pipe,
        Func::Fflush,
        Func::Close,
        Func::Getrlimit64,
        Func::Setrlimit64,
        Func::Setlocale,
        Func::ClockGettime,
        Func::Getcwd,
        Func::Bindtextdomain,
        Func::Textdomain,
        Func::Strtol,
    ];

    /// The 19-function subset spanning the coreutils fault space of §7.2
    /// (`Xfunc = (1, ..., 19)`), in category-grouped order.
    pub const COREUTILS19: [Func; 19] = [
        Func::Malloc,
        Func::Calloc,
        Func::Realloc,
        Func::Fopen,
        Func::Fclose,
        Func::Fgets,
        Func::Putc,
        Func::Fflush,
        Func::Open,
        Func::Read,
        Func::Write,
        Func::Close,
        Func::Stat,
        Func::Unlink,
        Func::Rename,
        Func::Opendir,
        Func::Closedir,
        Func::Chdir,
        Func::Getcwd,
    ];

    /// Looks a function up by its C symbol name.
    pub fn from_name(s: &str) -> Option<Func> {
        Func::ALL.iter().copied().find(|f| f.name() == s)
    }

    /// Whether the function reports failure by returning NULL (`0`) rather
    /// than `-1`. NULL-returning functions are where unchecked-return bugs
    /// (like the Apache `strdup` one) live.
    pub fn returns_null_on_error(self) -> bool {
        self.fault_profile().error_retval == 0
    }
}

impl fmt::Display for Func {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for &f in Func::ALL {
            assert!(seen.insert(f.name()), "duplicate name {}", f.name());
            assert_eq!(Func::from_name(f.name()), Some(f));
        }
        assert_eq!(Func::from_name("nosuchfn"), None);
    }

    #[test]
    fn fig1_has_29_functions() {
        assert_eq!(Func::FIG1.len(), 29);
        let set: std::collections::HashSet<_> = Func::FIG1.iter().collect();
        assert_eq!(set.len(), 29);
    }

    #[test]
    fn coreutils19_has_19_functions() {
        assert_eq!(Func::COREUTILS19.len(), 19);
        let set: std::collections::HashSet<_> = Func::COREUTILS19.iter().collect();
        assert_eq!(set.len(), 19);
    }

    #[test]
    fn canonical_order_groups_by_category() {
        // Every category forms one contiguous run in Func::ALL.
        let mut seen = std::collections::HashSet::new();
        let mut last = None;
        for &f in Func::ALL {
            let c = f.category();
            if last != Some(c) {
                assert!(seen.insert(c), "category {c:?} appears in two runs");
                last = Some(c);
            }
        }
    }

    #[test]
    fn profiles_are_sane() {
        for &f in Func::ALL {
            let p = f.fault_profile();
            assert!(!p.errnos.is_empty(), "{f} has no errnos");
            assert!(
                p.error_retval == 0 || p.error_retval == -1 || p.error_retval == 1,
                "{f} has unusual error retval {}",
                p.error_retval
            );
        }
    }

    #[test]
    fn null_returning_functions() {
        assert!(Func::Malloc.returns_null_on_error());
        assert!(Func::Strdup.returns_null_on_error());
        assert!(Func::Fopen.returns_null_on_error());
        assert!(!Func::Close.returns_null_on_error());
    }

    #[test]
    fn malloc_profile_matches_fig4() {
        let p = Func::Malloc.fault_profile();
        assert_eq!(p.error_retval, 0);
        assert_eq!(p.errnos, vec![Errno::ENOMEM]);
    }

    #[test]
    fn display_uses_c_name() {
        assert_eq!(Func::Xstat64.to_string(), "__xstat64");
        assert_eq!(Func::ClockGettime.to_string(), "clock_gettime");
    }
}
