//! The errno codes injectable at the application–library interface.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An errno value a failed libc call can set.
///
/// The set covers the codes LFI's callsite analyzer reports for the
/// functions in [`crate::libc_model`]; numeric values match Linux x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(clippy::upper_case_acronyms)]
pub enum Errno {
    /// Operation not permitted.
    EPERM,
    /// No such file or directory.
    ENOENT,
    /// Interrupted system call.
    EINTR,
    /// I/O error.
    EIO,
    /// Bad file descriptor.
    EBADF,
    /// Out of memory.
    ENOMEM,
    /// Permission denied.
    EACCES,
    /// Device or resource busy.
    EBUSY,
    /// File exists.
    EEXIST,
    /// Not a directory.
    ENOTDIR,
    /// Is a directory.
    EISDIR,
    /// Invalid argument.
    EINVAL,
    /// Too many open files in system.
    ENFILE,
    /// Too many open files.
    EMFILE,
    /// No space left on device.
    ENOSPC,
    /// Read-only file system.
    EROFS,
    /// Broken pipe.
    EPIPE,
    /// Resource temporarily unavailable.
    EAGAIN,
    /// Name too long.
    ENAMETOOLONG,
    /// Too many symbolic links.
    ELOOP,
    /// Connection reset by peer.
    ECONNRESET,
    /// Connection refused.
    ECONNREFUSED,
    /// Operation timed out.
    ETIMEDOUT,
    /// Disk quota exceeded.
    EDQUOT,
    /// Value too large for data type.
    EOVERFLOW,
}

impl Errno {
    /// All errno codes, in numeric order.
    pub const ALL: [Errno; 25] = [
        Errno::EPERM,
        Errno::ENOENT,
        Errno::EINTR,
        Errno::EIO,
        Errno::EBADF,
        Errno::ENOMEM,
        Errno::EACCES,
        Errno::EBUSY,
        Errno::EEXIST,
        Errno::ENOTDIR,
        Errno::EISDIR,
        Errno::EINVAL,
        Errno::ENFILE,
        Errno::EMFILE,
        Errno::ENOSPC,
        Errno::EROFS,
        Errno::EPIPE,
        Errno::EAGAIN,
        Errno::ENAMETOOLONG,
        Errno::ELOOP,
        Errno::ECONNRESET,
        Errno::ECONNREFUSED,
        Errno::ETIMEDOUT,
        Errno::EDQUOT,
        Errno::EOVERFLOW,
    ];

    /// The Linux x86-64 numeric value.
    pub fn code(self) -> i32 {
        match self {
            Errno::EPERM => 1,
            Errno::ENOENT => 2,
            Errno::EINTR => 4,
            Errno::EIO => 5,
            Errno::EBADF => 9,
            Errno::ENOMEM => 12,
            Errno::EACCES => 13,
            Errno::EBUSY => 16,
            Errno::EEXIST => 17,
            Errno::ENOTDIR => 20,
            Errno::EISDIR => 21,
            Errno::EINVAL => 22,
            Errno::ENFILE => 23,
            Errno::EMFILE => 24,
            Errno::ENOSPC => 28,
            Errno::EROFS => 30,
            Errno::EPIPE => 32,
            Errno::EAGAIN => 11,
            Errno::ENAMETOOLONG => 36,
            Errno::ELOOP => 40,
            Errno::ECONNRESET => 104,
            Errno::ECONNREFUSED => 111,
            Errno::ETIMEDOUT => 110,
            Errno::EDQUOT => 122,
            Errno::EOVERFLOW => 75,
        }
    }

    /// The symbolic name, as written in fault-space descriptors.
    pub fn name(self) -> &'static str {
        match self {
            Errno::EPERM => "EPERM",
            Errno::ENOENT => "ENOENT",
            Errno::EINTR => "EINTR",
            Errno::EIO => "EIO",
            Errno::EBADF => "EBADF",
            Errno::ENOMEM => "ENOMEM",
            Errno::EACCES => "EACCES",
            Errno::EBUSY => "EBUSY",
            Errno::EEXIST => "EEXIST",
            Errno::ENOTDIR => "ENOTDIR",
            Errno::EISDIR => "EISDIR",
            Errno::EINVAL => "EINVAL",
            Errno::ENFILE => "ENFILE",
            Errno::EMFILE => "EMFILE",
            Errno::ENOSPC => "ENOSPC",
            Errno::EROFS => "EROFS",
            Errno::EPIPE => "EPIPE",
            Errno::EAGAIN => "EAGAIN",
            Errno::ENAMETOOLONG => "ENAMETOOLONG",
            Errno::ELOOP => "ELOOP",
            Errno::ECONNRESET => "ECONNRESET",
            Errno::ECONNREFUSED => "ECONNREFUSED",
            Errno::ETIMEDOUT => "ETIMEDOUT",
            Errno::EDQUOT => "EDQUOT",
            Errno::EOVERFLOW => "EOVERFLOW",
        }
    }

    /// Parses a symbolic errno name.
    pub fn from_name(s: &str) -> Option<Errno> {
        Errno::ALL.iter().copied().find(|e| e.name() == s)
    }

    /// Looks up an errno by its Linux x86-64 numeric value — the inverse
    /// of [`Errno::code`], used when decoding the shim's injection log
    /// (which records the raw value it wrote into the child's errno).
    pub fn from_code(code: i32) -> Option<Errno> {
        Errno::ALL.iter().copied().find(|e| e.code() == code)
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for e in Errno::ALL {
            assert_eq!(Errno::from_name(e.name()), Some(e));
        }
        assert_eq!(Errno::from_name("EWHAT"), None);
    }

    #[test]
    fn codes_are_unique_and_positive() {
        let mut seen = std::collections::HashSet::new();
        for e in Errno::ALL {
            assert!(e.code() > 0);
            assert!(seen.insert(e.code()), "duplicate code for {e}");
        }
    }

    #[test]
    fn linux_values_spot_check() {
        assert_eq!(Errno::ENOMEM.code(), 12);
        assert_eq!(Errno::EINTR.code(), 4);
        assert_eq!(Errno::ENOSPC.code(), 28);
        assert_eq!(Errno::EAGAIN.code(), 11);
    }

    #[test]
    fn display_is_symbolic() {
        assert_eq!(Errno::EIO.to_string(), "EIO");
    }

    #[test]
    fn codes_roundtrip() {
        for e in Errno::ALL {
            assert_eq!(Errno::from_code(e.code()), Some(e));
        }
        assert_eq!(Errno::from_code(0), None);
        assert_eq!(Errno::from_code(-1), None);
    }
}
