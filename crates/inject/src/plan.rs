//! Fault plans: the atomic faults one test injects.
//!
//! §6: when a node manager receives a fault scenario ("inject an EINTR
//! error in the third read socket call, and an ENOMEM error in the seventh
//! malloc call"), it breaks the scenario down into *atomic faults* and
//! instructs the corresponding injectors. A [`FaultPlan`] is that broken-
//! down form; [`crate::env::LibcEnv`] consults it on every intercepted call.

use crate::errno::Errno;
use crate::libc_model::Func;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One atomic fault: fail the `call_number`-th call to `func` with the
/// given errno (the return value comes from the function's fault profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AtomicFault {
    /// The libc function whose call fails.
    pub func: Func,
    /// 1-based cardinality of the failing call, as in the paper's
    /// `<testID, functionName, callNumber>` injection points. `0` is never
    /// matched (the paper uses 0 to mean "no injection").
    pub call_number: u32,
    /// The errno the failed call sets.
    pub errno: Errno,
}

impl AtomicFault {
    /// Creates an atomic fault.
    pub fn new(func: Func, call_number: u32, errno: Errno) -> Self {
        AtomicFault {
            func,
            call_number,
            errno,
        }
    }

    /// Whether this fault is a valid point of the injector's fault space:
    /// the errno must be in the function's fault profile and the call
    /// number non-zero. Invalid combinations are the fault-space "holes".
    pub fn is_valid(&self) -> bool {
        self.call_number > 0 && self.func.fault_profile().errnos.contains(&self.errno)
    }
}

impl fmt::Display for AtomicFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "function {} errno {} retval {} callNumber {}",
            self.func,
            self.errno,
            self.func.fault_profile().error_retval,
            self.call_number
        )
    }
}

/// A fault plan: the set of atomic faults to inject during one test.
///
/// The paper's evaluation uses single-fault scenarios, but the plan
/// supports arbitrarily many atomic faults (multi-fault scenarios, §6).
/// An empty plan is the fault-free baseline run.
///
/// # Examples
///
/// ```
/// use afex_inject::{AtomicFault, Errno, FaultPlan, Func};
///
/// let plan = FaultPlan::single(Func::Malloc, 23, Errno::ENOMEM);
/// assert_eq!(plan.faults().len(), 1);
/// assert_eq!(
///     plan.to_string(),
///     "function malloc errno ENOMEM retval 0 callNumber 23"
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<AtomicFault>,
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A single-fault plan (the scenario shape of the paper's evaluation).
    pub fn single(func: Func, call_number: u32, errno: Errno) -> Self {
        FaultPlan {
            faults: vec![AtomicFault::new(func, call_number, errno)],
        }
    }

    /// A multi-fault plan.
    pub fn multi(faults: Vec<AtomicFault>) -> Self {
        FaultPlan { faults }
    }

    /// The atomic faults of this plan.
    pub fn faults(&self) -> &[AtomicFault] {
        &self.faults
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Whether every atomic fault is valid (see [`AtomicFault::is_valid`]).
    pub fn is_valid(&self) -> bool {
        self.faults.iter().all(AtomicFault::is_valid)
    }

    /// Returns the fault to inject for the `count`-th call to `func`
    /// (1-based), if any.
    pub fn matching(&self, func: Func, count: u32) -> Option<&AtomicFault> {
        self.faults
            .iter()
            .find(|f| f.func == func && f.call_number == count)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return f.write_str("(no injection)");
        }
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

impl From<AtomicFault> for FaultPlan {
    fn from(f: AtomicFault) -> Self {
        FaultPlan { faults: vec![f] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_plan_matches_only_its_call() {
        let p = FaultPlan::single(Func::Read, 3, Errno::EINTR);
        assert!(p.matching(Func::Read, 3).is_some());
        assert!(p.matching(Func::Read, 2).is_none());
        assert!(p.matching(Func::Read, 4).is_none());
        assert!(p.matching(Func::Malloc, 3).is_none());
    }

    #[test]
    fn multi_plan_matches_each_fault() {
        let p = FaultPlan::multi(vec![
            AtomicFault::new(Func::Read, 3, Errno::EINTR),
            AtomicFault::new(Func::Malloc, 7, Errno::ENOMEM),
        ]);
        assert!(p.matching(Func::Read, 3).is_some());
        assert!(p.matching(Func::Malloc, 7).is_some());
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_plan_is_baseline() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(p.is_valid());
        assert!(p.matching(Func::Malloc, 1).is_none());
        assert_eq!(p.to_string(), "(no injection)");
    }

    #[test]
    fn validity_follows_fault_profiles() {
        // malloc can only fail with ENOMEM.
        assert!(AtomicFault::new(Func::Malloc, 1, Errno::ENOMEM).is_valid());
        assert!(!AtomicFault::new(Func::Malloc, 1, Errno::EIO).is_valid());
        // Call number 0 means "no injection" and is a hole.
        assert!(!AtomicFault::new(Func::Malloc, 0, Errno::ENOMEM).is_valid());
    }

    #[test]
    fn display_matches_fig5_format() {
        let p = FaultPlan::single(Func::Malloc, 23, Errno::ENOMEM);
        assert_eq!(
            p.to_string(),
            "function malloc errno ENOMEM retval 0 callNumber 23"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let p = FaultPlan::multi(vec![
            AtomicFault::new(Func::Fclose, 1, Errno::EIO),
            AtomicFault::new(Func::Write, 2, Errno::ENOSPC),
        ]);
        let json = serde_json::to_string(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
