//! A small victim program the preload shim is tested against.
//!
//! Modes (first argument):
//!
//! - `read-file <path>` — open/read/close via libc; on read error prints
//!   a diagnostic and exits 1 (graceful recovery: the good case).
//! - `alloc <n>` — `malloc(64)` n times, checking each result; on NULL
//!   prints a diagnostic and exits 1 (graceful).
//! - `alloc-unchecked <n>` — same but writes through the pointer without
//!   a NULL check: under an injected malloc failure this segfaults, the
//!   miniature of the Apache Fig. 7 bug on a real process.

use std::ffi::{c_char, c_int, c_void};

extern "C" {
    fn open(path: *const c_char, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn malloc(size: usize) -> *mut c_void;
    fn free(p: *mut c_void);
    fn __errno_location() -> *mut c_int;
}

fn errno() -> i32 {
    // SAFETY: glibc guarantees a valid per-thread errno location.
    unsafe { *__errno_location() }
}

fn run_read_file(path: &str) -> i32 {
    let cpath = format!("{path}\0");
    // SAFETY: `cpath` is NUL-terminated; O_RDONLY == 0.
    let fd = unsafe { open(cpath.as_ptr() as *const c_char, 0) };
    if fd < 0 {
        eprintln!("victim: cannot open {path}: errno {}", errno());
        return 1;
    }
    let mut total = 0usize;
    let mut buf = [0u8; 256];
    loop {
        // SAFETY: `buf` is a valid writable region of the given length.
        let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        match n {
            0 => break,
            n if n < 0 => {
                eprintln!("victim: read failed: errno {}", errno());
                // SAFETY: `fd` is open.
                unsafe { close(fd) };
                return 1;
            }
            n => total += n as usize,
        }
    }
    // SAFETY: `fd` is open.
    if unsafe { close(fd) } != 0 {
        eprintln!("victim: close failed: errno {}", errno());
        return 1;
    }
    println!("victim: read {total} bytes");
    0
}

/// Distinctive allocation size so the shim's `AFEX_SIZE` predicate can
/// target the victim's own allocations rather than the runtime's.
const VICTIM_ALLOC_SIZE: usize = 4242;

fn run_alloc(n: usize, checked: bool) -> i32 {
    for i in 1..=n {
        // SAFETY: plain allocation request.
        let p = unsafe { malloc(VICTIM_ALLOC_SIZE) };
        if checked && p.is_null() {
            eprintln!("victim: malloc #{i} failed: errno {}", errno());
            return 1;
        }
        // The unchecked path writes regardless — NULL here segfaults,
        // which is the point of the `alloc-unchecked` mode.
        // SAFETY (checked mode): `p` is non-null and at least 64 bytes.
        unsafe {
            *(p as *mut u8) = 0xAA;
            free(p);
        }
    }
    println!("victim: {n} allocations ok");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("read-file") => {
            run_read_file(args.get(2).map(String::as_str).unwrap_or("/etc/hostname"))
        }
        Some("alloc") => run_alloc(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4), true),
        Some("alloc-unchecked") => {
            run_alloc(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4), false)
        }
        _ => {
            eprintln!("usage: victim <read-file|alloc|alloc-unchecked> [arg]");
            2
        }
    };
    std::process::exit(code);
}
