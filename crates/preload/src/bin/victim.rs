//! A small victim program the preload shim is tested against.
//!
//! Modes (first argument):
//!
//! - `read-file <path>` — open/read/close via libc; on read error prints
//!   a diagnostic and exits 1 (graceful recovery: the good case).
//! - `alloc <n>` — `malloc(64)` n times, checking each result; on NULL
//!   prints a diagnostic and exits 1 (graceful).
//! - `alloc-unchecked <n>` — same but writes through the pointer without
//!   a NULL check: under an injected malloc failure this segfaults, the
//!   miniature of the Apache Fig. 7 bug on a real process.
//! - `spin` — one checked `malloc`, then sleeps forever: the
//!   stops-making-progress case a wall-clock watchdog must classify as
//!   hung. Sleeps (rather than busy-loops) so a CPU rlimit cannot kill
//!   it first — the hang must be caught by the watchdog, not by the
//!   kernel.

use std::ffi::{c_char, c_int, c_void};

extern "C" {
    fn open(path: *const c_char, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn malloc(size: usize) -> *mut c_void;
    fn free(p: *mut c_void);
    fn __errno_location() -> *mut c_int;
}

fn errno() -> i32 {
    // SAFETY: glibc guarantees a valid per-thread errno location.
    unsafe { *__errno_location() }
}

fn run_read_file(path: &str) -> i32 {
    let cpath = format!("{path}\0");
    // SAFETY: `cpath` is NUL-terminated; O_RDONLY == 0.
    let fd = unsafe { open(cpath.as_ptr() as *const c_char, 0) };
    if fd < 0 {
        eprintln!("victim: cannot open {path}: errno {}", errno());
        return 1;
    }
    let mut total = 0usize;
    let mut buf = [0u8; 256];
    loop {
        // SAFETY: `buf` is a valid writable region of the given length.
        let n = unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) };
        match n {
            0 => break,
            n if n < 0 => {
                eprintln!("victim: read failed: errno {}", errno());
                // SAFETY: `fd` is open.
                unsafe { close(fd) };
                return 1;
            }
            n => total += n as usize,
        }
    }
    // SAFETY: `fd` is open.
    if unsafe { close(fd) } != 0 {
        eprintln!("victim: close failed: errno {}", errno());
        return 1;
    }
    println!("victim: read {total} bytes");
    0
}

/// Distinctive allocation size so the shim's `AFEX_SIZE` predicate can
/// target the victim's own allocations rather than the runtime's.
const VICTIM_ALLOC_SIZE: usize = 4242;

fn run_alloc(n: usize, checked: bool) -> i32 {
    for i in 1..=n {
        // black_box + write_volatile: LLVM treats `malloc` as a known
        // allocator and at -O3 deletes a malloc/dead-store/free triple
        // outright — which would leave the optimized victim with no
        // malloc calls to inject into. Opaque pointer + volatile store
        // keep the calls (and the unchecked segfault) in every profile.
        // SAFETY: plain allocation request.
        let p = std::hint::black_box(unsafe { malloc(VICTIM_ALLOC_SIZE) });
        if checked && p.is_null() {
            eprintln!("victim: malloc #{i} failed: errno {}", errno());
            return 1;
        }
        // The unchecked path writes regardless — NULL here segfaults,
        // which is the point of the `alloc-unchecked` mode.
        // SAFETY (checked mode): `p` is non-null and at least 64 bytes.
        unsafe {
            std::ptr::write_volatile(p as *mut u8, 0xAA);
            free(p);
        }
    }
    println!("victim: {n} allocations ok");
    0
}

/// One checked allocation (injectable, exits 1 gracefully if it fails),
/// then no further progress, ever. The recovery property under test is
/// the *driver's*: its watchdog must kill this process and classify the
/// outcome as hung.
fn run_spin() -> i32 {
    // black_box for the same reason as `run_alloc`: the injectable
    // malloc must survive -O3.
    // SAFETY: plain allocation request.
    let p = std::hint::black_box(unsafe { malloc(VICTIM_ALLOC_SIZE) });
    if p.is_null() {
        eprintln!("victim: malloc failed before spin: errno {}", errno());
        return 1;
    }
    // SAFETY: `p` is non-null.
    unsafe { free(p) };
    println!("victim: spinning forever");
    loop {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let code = match args.get(1).map(String::as_str) {
        Some("read-file") => {
            run_read_file(args.get(2).map(String::as_str).unwrap_or("/etc/hostname"))
        }
        Some("alloc") => run_alloc(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4), true),
        Some("alloc-unchecked") => {
            run_alloc(args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4), false)
        }
        Some("spin") => run_spin(),
        _ => {
            eprintln!("usage: victim <read-file|alloc|alloc-unchecked|spin> [arg]");
            2
        }
    };
    std::process::exit(code);
}
