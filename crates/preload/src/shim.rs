//! The interposition shim: `malloc`, `read`, `fopen`, `close` wrappers.
//!
//! Compiled into the crate's `cdylib` and activated with `LD_PRELOAD`.
//! Each wrapper counts its calls; when the configured call number is
//! reached, it returns the function's error value and sets the requested
//! errno, without calling the real function — exactly LFI's behaviour for
//! a "fail call N" plan.
//!
//! Interposing allocator functions is delicate: configuration parsing
//! must not recurse into the wrapped `malloc` (reading environment
//! variables allocates). A thread-local re-entrancy flag makes any
//! allocation performed *during* configuration pass straight through.

use std::cell::Cell;
use std::ffi::{c_char, c_int, c_void};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// `RTLD_NEXT` on glibc: resolve the next occurrence of the symbol.
const RTLD_NEXT: *mut c_void = -1isize as *mut c_void;

extern "C" {
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn __errno_location() -> *mut c_int;
}

/// Which function the plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Malloc,
    Read,
    Fopen,
    Close,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    target: Target,
    call: u32,
    errno: c_int,
    /// Optional argument predicate: for `malloc`, only calls with exactly
    /// this size count (LFI-style injection-point argument filters; lets
    /// tests pinpoint application allocations amid runtime ones).
    size: Option<usize>,
}

static CONFIG: OnceLock<Option<Config>> = OnceLock::new();

thread_local! {
    /// Set while parsing configuration: wrapped functions pass through.
    static REENTRANT: Cell<bool> = const { Cell::new(false) };
}

fn parse_config() -> Option<Config> {
    let func = std::env::var("AFEX_FUNC").ok()?;
    let target = match func.as_str() {
        "malloc" => Target::Malloc,
        "read" => Target::Read,
        "fopen" => Target::Fopen,
        "close" => Target::Close,
        _ => return None,
    };
    let call = std::env::var("AFEX_CALL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let default_errno = match target {
        Target::Malloc => 12, // ENOMEM.
        Target::Read => 5,    // EIO.
        Target::Fopen => 2,   // ENOENT.
        Target::Close => 9,   // EBADF.
    };
    let errno = std::env::var("AFEX_ERRNO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_errno);
    let size = std::env::var("AFEX_SIZE").ok().and_then(|s| s.parse().ok());
    Some(Config {
        target,
        call,
        errno,
        size,
    })
}

/// Returns the active config, or `None` when inert or mid-initialization.
fn config() -> Option<Config> {
    if REENTRANT.with(Cell::get) {
        return None;
    }
    REENTRANT.with(|r| r.set(true));
    let c = *CONFIG.get_or_init(parse_config);
    REENTRANT.with(|r| r.set(false));
    c
}

/// Decides whether this call (1-based `count`) of `target` must fail; if
/// so, sets errno and returns `true`. `arg_size` carries the size
/// argument for allocator calls (`None` elsewhere).
fn should_fail(target: Target, counter: &AtomicU32, arg_size: Option<usize>) -> bool {
    let Some(cfg) = config() else { return false };
    if cfg.target != target {
        return false;
    }
    if let (Some(want), Some(got)) = (cfg.size, arg_size) {
        if want != got {
            return false;
        }
    }
    let count = counter.fetch_add(1, Ordering::SeqCst) + 1;
    if count != cfg.call {
        return false;
    }
    // SAFETY: `__errno_location` returns the calling thread's valid errno
    // slot for the thread's lifetime; writing a plain `c_int` is sound.
    unsafe {
        *__errno_location() = cfg.errno;
    }
    true
}

/// Resolves (and caches) the real `name` via `dlsym(RTLD_NEXT, ...)`.
///
/// Aborts the process if the symbol cannot be resolved — continuing with
/// a null function pointer would be undefined behavior.
///
/// # Safety
///
/// `name` must be a NUL-terminated C string naming a symbol whose type
/// matches how the caller transmutes the result.
unsafe fn real(name: &'static str, cache: &std::sync::atomic::AtomicPtr<c_void>) -> *mut c_void {
    debug_assert!(name.ends_with('\0'));
    let cached = cache.load(Ordering::Acquire);
    if !cached.is_null() {
        return cached;
    }
    // SAFETY: `name` is NUL-terminated per the contract; RTLD_NEXT is a
    // reserved pseudo-handle documented by glibc.
    let resolved = unsafe { dlsym(RTLD_NEXT, name.as_ptr() as *const c_char) };
    if resolved.is_null() {
        std::process::abort();
    }
    cache.store(resolved, Ordering::Release);
    resolved
}

static REAL_MALLOC: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_READ: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_FOPEN: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_CLOSE: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());

static MALLOC_CALLS: AtomicU32 = AtomicU32::new(0);
static READ_CALLS: AtomicU32 = AtomicU32::new(0);
static FOPEN_CALLS: AtomicU32 = AtomicU32::new(0);
static CLOSE_CALLS: AtomicU32 = AtomicU32::new(0);

/// Interposed `malloc`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `malloc`'s contract.
#[no_mangle]
pub unsafe extern "C" fn malloc(size: usize) -> *mut c_void {
    if should_fail(Target::Malloc, &MALLOC_CALLS, Some(size)) {
        return std::ptr::null_mut();
    }
    // SAFETY: the resolved symbol is glibc's real malloc, whose signature
    // matches the transmute target.
    unsafe {
        let f: extern "C" fn(usize) -> *mut c_void =
            std::mem::transmute(real("malloc\0", &REAL_MALLOC));
        f(size)
    }
}

/// Interposed `read`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `read`'s contract.
#[no_mangle]
pub unsafe extern "C" fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize {
    if should_fail(Target::Read, &READ_CALLS, None) {
        return -1;
    }
    // SAFETY: the resolved symbol is glibc's real read; arguments are
    // forwarded unchanged under the same contract the caller honours.
    unsafe {
        let f: extern "C" fn(c_int, *mut c_void, usize) -> isize =
            std::mem::transmute(real("read\0", &REAL_READ));
        f(fd, buf, count)
    }
}

/// Interposed `fopen`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `fopen`'s contract.
#[no_mangle]
pub unsafe extern "C" fn fopen(path: *const c_char, mode: *const c_char) -> *mut c_void {
    if should_fail(Target::Fopen, &FOPEN_CALLS, None) {
        return std::ptr::null_mut();
    }
    // SAFETY: forwards to glibc's real fopen under the same contract.
    unsafe {
        let f: extern "C" fn(*const c_char, *const c_char) -> *mut c_void =
            std::mem::transmute(real("fopen\0", &REAL_FOPEN));
        f(path, mode)
    }
}

/// Interposed `close`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `close`'s contract.
#[no_mangle]
pub unsafe extern "C" fn close(fd: c_int) -> c_int {
    if should_fail(Target::Close, &CLOSE_CALLS, None) {
        return -1;
    }
    // SAFETY: forwards to glibc's real close under the same contract.
    unsafe {
        let f: extern "C" fn(c_int) -> c_int = std::mem::transmute(real("close\0", &REAL_CLOSE));
        f(fd)
    }
}
