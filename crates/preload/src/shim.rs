//! The interposition shim: `malloc`, `read`, `fopen`, `close` wrappers.
//!
//! Compiled into the crate's `cdylib` and activated with `LD_PRELOAD`.
//! Each wrapper counts its calls; when the configured call number is
//! reached, it returns the function's error value and sets the requested
//! errno, without calling the real function — exactly LFI's behaviour for
//! a "fail call N" plan.
//!
//! Interposing allocator functions is delicate: configuration parsing
//! must not recurse into the wrapped `malloc` (reading environment
//! variables allocates). A thread-local re-entrancy flag makes any
//! allocation performed *during* configuration pass straight through.

use crate::log::ShimLogEntry;
use std::cell::Cell;
use std::ffi::{c_char, c_int, c_void, CStr};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::OnceLock;

/// `RTLD_NEXT` on glibc: resolve the next occurrence of the symbol.
const RTLD_NEXT: *mut c_void = -1isize as *mut c_void;

/// `Dl_info` for `dladdr`: where an address lives and what symbol (if
/// any, dynamic symbols only) it resolves to.
#[repr(C)]
struct DlInfo {
    dli_fname: *const c_char,
    dli_fbase: *mut c_void,
    dli_sname: *const c_char,
    dli_saddr: *mut c_void,
}

extern "C" {
    fn dlsym(handle: *mut c_void, symbol: *const c_char) -> *mut c_void;
    fn dladdr(addr: *const c_void, info: *mut DlInfo) -> c_int;
    fn backtrace(buffer: *mut *mut c_void, size: c_int) -> c_int;
    fn __errno_location() -> *mut c_int;
}

/// Which function the plan targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Malloc,
    Read,
    Fopen,
    Close,
}

#[derive(Debug, Clone, Copy)]
struct Config {
    target: Target,
    call: u32,
    errno: c_int,
    /// Optional argument predicate: for `malloc`, only calls with exactly
    /// this size count (LFI-style injection-point argument filters; lets
    /// tests pinpoint application allocations amid runtime ones).
    size: Option<usize>,
}

static CONFIG: OnceLock<Option<Config>> = OnceLock::new();

/// Path of the machine-readable injection log (`AFEX_LOG`), if asked
/// for. Kept outside [`Config`] so the config stays `Copy`.
static LOG_PATH: OnceLock<Option<std::path::PathBuf>> = OnceLock::new();

thread_local! {
    /// Set while parsing configuration: wrapped functions pass through.
    static REENTRANT: Cell<bool> = const { Cell::new(false) };
}

fn parse_config() -> Option<Config> {
    let _ = LOG_PATH.set(std::env::var("AFEX_LOG").ok().map(Into::into));
    let func = std::env::var("AFEX_FUNC").ok()?;
    let target = match func.as_str() {
        "malloc" => Target::Malloc,
        "read" => Target::Read,
        "fopen" => Target::Fopen,
        "close" => Target::Close,
        _ => return None,
    };
    let call = std::env::var("AFEX_CALL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let default_errno = match target {
        Target::Malloc => 12, // ENOMEM.
        Target::Read => 5,    // EIO.
        Target::Fopen => 2,   // ENOENT.
        Target::Close => 9,   // EBADF.
    };
    let errno = std::env::var("AFEX_ERRNO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_errno);
    let size = std::env::var("AFEX_SIZE").ok().and_then(|s| s.parse().ok());
    Some(Config {
        target,
        call,
        errno,
        size,
    })
}

/// Returns the active config, or `None` when inert or mid-initialization.
fn config() -> Option<Config> {
    if REENTRANT.with(Cell::get) {
        return None;
    }
    REENTRANT.with(|r| r.set(true));
    let c = *CONFIG.get_or_init(parse_config);
    REENTRANT.with(|r| r.set(false));
    c
}

/// Decides whether this call (1-based `count`) of `target` must fail; if
/// so, sets errno and returns `true`. `arg_size` carries the size
/// argument for allocator calls (`None` elsewhere).
fn should_fail(target: Target, counter: &AtomicU32, arg_size: Option<usize>) -> bool {
    let Some(cfg) = config() else { return false };
    if cfg.target != target {
        return false;
    }
    if let (Some(want), Some(got)) = (cfg.size, arg_size) {
        if want != got {
            return false;
        }
    }
    let count = counter.fetch_add(1, Ordering::SeqCst) + 1;
    if count != cfg.call {
        return false;
    }
    // Record the injection before touching errno: the log write performs
    // its own syscalls, which would clobber the value we are about to
    // plant for the application.
    log_injection(target, cfg);
    // SAFETY: `__errno_location` returns the calling thread's valid errno
    // slot for the thread's lifetime; writing a plain `c_int` is sound.
    unsafe {
        *__errno_location() = cfg.errno;
    }
    true
}

fn target_name(target: Target) -> &'static str {
    match target {
        Target::Malloc => "malloc",
        Target::Read => "read",
        Target::Fopen => "fopen",
        Target::Close => "close",
    }
}

/// Captures the stack at the injection point, outermost frame first,
/// with the shim's own frames dropped — the driver renders the trace as
/// `a>b>c>libcfn`, appending the intercepted function itself.
///
/// Frames are resolved with `dladdr`: dynamic symbols get their name,
/// everything else (the victim's internal functions are not exported)
/// gets `object+0xoffset` with the offset relative to the object's load
/// base, so the rendering is stable under ASLR.
fn capture_stack() -> Vec<String> {
    const MAX_FRAMES: usize = 64;
    let mut addrs = [std::ptr::null_mut(); MAX_FRAMES];
    // SAFETY: `addrs` is a valid writable buffer of MAX_FRAMES pointers.
    let depth = unsafe { backtrace(addrs.as_mut_ptr(), MAX_FRAMES as c_int) } as usize;
    let own_base = object_base(capture_stack as *const c_void);
    let mut frames = Vec::new();
    // backtrace reports innermost-first; the log wants outermost-first.
    for &addr in addrs[..depth.min(MAX_FRAMES)].iter().rev() {
        let mut info = DlInfo {
            dli_fname: std::ptr::null(),
            dli_fbase: std::ptr::null_mut(),
            dli_sname: std::ptr::null(),
            dli_saddr: std::ptr::null_mut(),
        };
        // SAFETY: `info` is a valid out-parameter; dladdr tolerates any
        // address and reports failure via its return value.
        if unsafe { dladdr(addr, &mut info) } == 0 {
            frames.push("?".to_owned());
            continue;
        }
        if !info.dli_fbase.is_null() && info.dli_fbase == own_base {
            continue; // The shim's own machinery is not the victim's stack.
        }
        if !info.dli_sname.is_null() {
            // SAFETY: dladdr returned a valid NUL-terminated symbol name.
            let name = unsafe { CStr::from_ptr(info.dli_sname) };
            frames.push(name.to_string_lossy().into_owned());
        } else if !info.dli_fname.is_null() && !info.dli_fbase.is_null() {
            // SAFETY: dladdr returned a valid NUL-terminated object path.
            let fname = unsafe { CStr::from_ptr(info.dli_fname) };
            let object = fname.to_string_lossy();
            let object = object.rsplit('/').next().unwrap_or("?").to_owned();
            frames.push(format!("{object}+{:#x}", addr as usize - info.dli_fbase as usize));
        } else {
            frames.push("?".to_owned());
        }
    }
    frames
}

/// The load base of the object containing `addr` (null if unknown).
fn object_base(addr: *const c_void) -> *mut c_void {
    let mut info = DlInfo {
        dli_fname: std::ptr::null(),
        dli_fbase: std::ptr::null_mut(),
        dli_sname: std::ptr::null(),
        dli_saddr: std::ptr::null_mut(),
    };
    // SAFETY: `info` is a valid out-parameter.
    if unsafe { dladdr(addr, &mut info) } == 0 {
        return std::ptr::null_mut();
    }
    info.dli_fbase
}

/// Writes the injection record to the `AFEX_LOG` file, atomically (temp
/// file in the same directory + rename): the driver either sees no log
/// or a complete one, never a torn line — and its parser drops torn
/// tails anyway should the rename discipline break down.
///
/// Runs with the re-entrancy flag set: the write's own allocations and
/// `close` calls pass straight through the wrappers instead of being
/// counted (or failed) as the application's.
fn log_injection(target: Target, cfg: Config) {
    let Some(Some(path)) = LOG_PATH.get().map(Option::as_ref) else {
        return;
    };
    REENTRANT.with(|r| r.set(true));
    let entry = ShimLogEntry {
        func: target_name(target).to_owned(),
        call: cfg.call,
        errno: cfg.errno,
        stack: capture_stack(),
    };
    let tmp = {
        let mut os = path.as_os_str().to_owned();
        os.push(format!(".{}.tmp", std::process::id()));
        std::path::PathBuf::from(os)
    };
    let line = entry.render() + "\n";
    if std::fs::write(&tmp, line).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
    REENTRANT.with(|r| r.set(false));
}

/// Resolves (and caches) the real `name` via `dlsym(RTLD_NEXT, ...)`.
///
/// Aborts the process if the symbol cannot be resolved — continuing with
/// a null function pointer would be undefined behavior.
///
/// # Safety
///
/// `name` must be a NUL-terminated C string naming a symbol whose type
/// matches how the caller transmutes the result.
unsafe fn real(name: &'static str, cache: &std::sync::atomic::AtomicPtr<c_void>) -> *mut c_void {
    debug_assert!(name.ends_with('\0'));
    let cached = cache.load(Ordering::Acquire);
    if !cached.is_null() {
        return cached;
    }
    // SAFETY: `name` is NUL-terminated per the contract; RTLD_NEXT is a
    // reserved pseudo-handle documented by glibc.
    let resolved = unsafe { dlsym(RTLD_NEXT, name.as_ptr() as *const c_char) };
    if resolved.is_null() {
        std::process::abort();
    }
    cache.store(resolved, Ordering::Release);
    resolved
}

static REAL_MALLOC: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_READ: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_FOPEN: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());
static REAL_CLOSE: std::sync::atomic::AtomicPtr<c_void> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());

static MALLOC_CALLS: AtomicU32 = AtomicU32::new(0);
static READ_CALLS: AtomicU32 = AtomicU32::new(0);
static FOPEN_CALLS: AtomicU32 = AtomicU32::new(0);
static CLOSE_CALLS: AtomicU32 = AtomicU32::new(0);

/// Interposed `malloc`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `malloc`'s contract.
#[no_mangle]
pub unsafe extern "C" fn malloc(size: usize) -> *mut c_void {
    if should_fail(Target::Malloc, &MALLOC_CALLS, Some(size)) {
        return std::ptr::null_mut();
    }
    // SAFETY: the resolved symbol is glibc's real malloc, whose signature
    // matches the transmute target.
    unsafe {
        let f: extern "C" fn(usize) -> *mut c_void =
            std::mem::transmute(real("malloc\0", &REAL_MALLOC));
        f(size)
    }
}

/// Interposed `read`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `read`'s contract.
#[no_mangle]
pub unsafe extern "C" fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize {
    if should_fail(Target::Read, &READ_CALLS, None) {
        return -1;
    }
    // SAFETY: the resolved symbol is glibc's real read; arguments are
    // forwarded unchanged under the same contract the caller honours.
    unsafe {
        let f: extern "C" fn(c_int, *mut c_void, usize) -> isize =
            std::mem::transmute(real("read\0", &REAL_READ));
        f(fd, buf, count)
    }
}

/// Interposed `fopen`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `fopen`'s contract.
#[no_mangle]
pub unsafe extern "C" fn fopen(path: *const c_char, mode: *const c_char) -> *mut c_void {
    if should_fail(Target::Fopen, &FOPEN_CALLS, None) {
        return std::ptr::null_mut();
    }
    // SAFETY: forwards to glibc's real fopen under the same contract.
    unsafe {
        let f: extern "C" fn(*const c_char, *const c_char) -> *mut c_void =
            std::mem::transmute(real("fopen\0", &REAL_FOPEN));
        f(path, mode)
    }
}

/// Interposed `close`.
///
/// # Safety
///
/// Exported with the C ABI under the libc symbol name; called by
/// arbitrary C code with `close`'s contract.
#[no_mangle]
pub unsafe extern "C" fn close(fd: c_int) -> c_int {
    if should_fail(Target::Close, &CLOSE_CALLS, None) {
        return -1;
    }
    // SAFETY: forwards to glibc's real close under the same contract.
    unsafe {
        let f: extern "C" fn(c_int) -> c_int = std::mem::transmute(real("close\0", &REAL_CLOSE));
        f(fd)
    }
}
