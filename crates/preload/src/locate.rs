//! Locating the built shim and victim artifacts at run time.
//!
//! Both the preload e2e tests and the real-process executor need the
//! same two files — the interposition cdylib and the `victim` binary —
//! and neither can rely on compile-time paths: the executor runs from
//! whatever profile directory the user built, and the tests used to
//! guess `target/{debug,release}` from `CARGO_MANIFEST_DIR`, which broke
//! under custom `--target-dir`s. This module is the one resolver both
//! share:
//!
//! 1. An explicit override wins: `AFEX_SHIM_PATH` / `AFEX_VICTIM_PATH`.
//! 2. Otherwise the artifact is looked up next to the running executable
//!    (climbing out of cargo's `deps/` directory when the caller is a
//!    test binary), then in the sibling profile directory — a debug test
//!    run can find a release-built victim and vice versa.

use std::path::{Path, PathBuf};

/// File name of the interposition cdylib.
pub const SHIM_FILE: &str = "libafex_preload.so";
/// File name of the victim binary.
pub const VICTIM_FILE: &str = "victim";

/// Environment variable overriding the shim location.
pub const SHIM_PATH_VAR: &str = "AFEX_SHIM_PATH";
/// Environment variable overriding the victim location.
pub const VICTIM_PATH_VAR: &str = "AFEX_VICTIM_PATH";

/// The directories an artifact is searched in, in order: the directory
/// of the running executable (out of `deps/` if inside it), then the
/// sibling profile directory under the same target root.
fn search_dirs() -> Vec<PathBuf> {
    let mut dirs = Vec::new();
    let Ok(exe) = std::env::current_exe() else {
        return dirs;
    };
    let Some(mut dir) = exe.parent().map(Path::to_path_buf) else {
        return dirs;
    };
    // Test binaries live in target/<profile>/deps/.
    if dir.file_name().is_some_and(|n| n == "deps") {
        if let Some(parent) = dir.parent() {
            dir = parent.to_path_buf();
        }
    }
    dirs.push(dir.clone());
    if let (Some(root), Some(profile)) = (dir.parent(), dir.file_name()) {
        for sibling in ["debug", "release"] {
            if profile != sibling {
                dirs.push(root.join(sibling));
            }
        }
    }
    dirs
}

fn locate(var: &str, file: &str) -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var(var) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(format!(
            "{var} points at {}, which does not exist",
            path.display()
        ));
    }
    let dirs = search_dirs();
    for dir in &dirs {
        let candidate = dir.join(file);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(format!(
        "cannot find {file} (searched {}); build it with \
         `cargo build --release -p afex-preload` or set {var}",
        dirs.iter()
            .map(|d| d.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

/// Resolves the interposition cdylib.
///
/// # Errors
///
/// Returns a human-readable description (including how to build the
/// artifact) when the shim cannot be found.
pub fn shim_path() -> Result<PathBuf, String> {
    locate(SHIM_PATH_VAR, SHIM_FILE)
}

/// Resolves the victim binary.
///
/// # Errors
///
/// Returns a human-readable description (including how to build the
/// artifact) when the victim cannot be found.
pub fn victim_path() -> Result<PathBuf, String> {
    locate(VICTIM_PATH_VAR, VICTIM_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_must_exist() {
        // A bogus override is an error, not a silent fallback: the user
        // asked for a specific file.
        std::env::set_var(SHIM_PATH_VAR, "/nonexistent/shim.so");
        let err = shim_path().unwrap_err();
        std::env::remove_var(SHIM_PATH_VAR);
        assert!(err.contains("/nonexistent/shim.so"), "{err}");
        assert!(err.contains(SHIM_PATH_VAR), "{err}");
    }

    #[test]
    fn search_includes_own_profile_dir() {
        let dirs = search_dirs();
        assert!(!dirs.is_empty());
        let exe = std::env::current_exe().unwrap();
        assert!(
            dirs.iter().any(|d| exe.starts_with(d.parent().unwrap())),
            "search dirs {dirs:?} unrelated to {}",
            exe.display()
        );
    }

    #[test]
    fn missing_artifact_error_names_the_fix() {
        // Whatever the build layout, the error for an unfindable file
        // must tell the user how to produce it.
        std::env::remove_var("AFEX_NOSUCH_PATH");
        let err = locate("AFEX_NOSUCH_PATH", "no-such-artifact").unwrap_err();
        assert!(err.contains("cargo build"), "{err}");
        assert!(err.contains("AFEX_NOSUCH_PATH"), "{err}");
    }
}
