//! Driver-side construction of the shim's environment protocol.

use std::path::PathBuf;

/// One injection request, rendered as environment variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionEnv {
    func: String,
    call: u32,
    errno: i32,
    size: Option<usize>,
    log: Option<PathBuf>,
}

impl InjectionEnv {
    /// Fail the `call`-th call to `func` with errno `errno`.
    pub fn new(func: impl Into<String>, call: u32, errno: i32) -> Self {
        InjectionEnv {
            func: func.into(),
            call,
            errno,
            size: None,
            log: None,
        }
    }

    /// Adds an allocation-size predicate: only calls with exactly this
    /// size argument count toward the call number (LFI-style injection
    /// point argument filter — pins application allocations amid the
    /// runtime's own).
    #[must_use]
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = Some(size);
        self
    }

    /// Asks the shim to record every performed injection (function, call,
    /// errno, captured stack) in this file — see [`crate::log`].
    #[must_use]
    pub fn with_log(mut self, path: impl Into<PathBuf>) -> Self {
        self.log = Some(path.into());
        self
    }

    /// The targeted function name.
    pub fn func(&self) -> &str {
        &self.func
    }

    /// The `(name, value)` pairs to set on the child process.
    pub fn vars(&self) -> Vec<(String, String)> {
        let mut vars = vec![
            ("AFEX_FUNC".to_owned(), self.func.clone()),
            ("AFEX_CALL".to_owned(), self.call.to_string()),
            ("AFEX_ERRNO".to_owned(), self.errno.to_string()),
        ];
        if let Some(size) = self.size {
            vars.push(("AFEX_SIZE".to_owned(), size.to_string()));
        }
        if let Some(log) = &self.log {
            vars.push(("AFEX_LOG".to_owned(), log.display().to_string()));
        }
        vars
    }
}

/// Everything needed to run one real-process fault-injection test: the
/// target binary, its arguments, and the interposition setup. The
/// executor (in `afex-core`) supplies the sandbox, the timeout, and the
/// log path; this is the pure description the space/targets layer
/// produces per fault point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessPlan {
    /// The binary to execute.
    pub program: PathBuf,
    /// Its command-line arguments.
    pub args: Vec<String>,
    /// The injection to perform, if any (`None` runs the bare workload —
    /// the "no injection" fault points).
    pub injection: Option<InjectionEnv>,
    /// The interposition cdylib to `LD_PRELOAD`, if the plan injects.
    pub preload: Option<PathBuf>,
}

impl ProcessPlan {
    /// A bare run of `program` with `args`: no shim, no injection.
    pub fn bare(program: impl Into<PathBuf>, args: Vec<String>) -> Self {
        ProcessPlan {
            program: program.into(),
            args,
            injection: None,
            preload: None,
        }
    }

    /// Adds an injection performed through the given preload shim.
    #[must_use]
    pub fn with_injection(mut self, shim: impl Into<PathBuf>, env: InjectionEnv) -> Self {
        self.preload = Some(shim.into());
        self.injection = Some(env);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_render_protocol() {
        let e = InjectionEnv::new("malloc", 3, 12);
        let vars = e.vars();
        assert!(vars.contains(&("AFEX_FUNC".into(), "malloc".into())));
        assert!(vars.contains(&("AFEX_CALL".into(), "3".into())));
        assert!(vars.contains(&("AFEX_ERRNO".into(), "12".into())));
        assert!(!vars.iter().any(|(k, _)| k == "AFEX_SIZE" || k == "AFEX_LOG"));
    }

    #[test]
    fn size_and_log_render_when_set() {
        let e = InjectionEnv::new("malloc", 1, 12)
            .with_size(4242)
            .with_log("/tmp/shim.log");
        let vars = e.vars();
        assert!(vars.contains(&("AFEX_SIZE".into(), "4242".into())));
        assert!(vars.contains(&("AFEX_LOG".into(), "/tmp/shim.log".into())));
    }

    #[test]
    fn plans_carry_the_preload_setup() {
        let bare = ProcessPlan::bare("/bin/victim", vec!["alloc".into()]);
        assert!(bare.injection.is_none() && bare.preload.is_none());
        let injected = bare.with_injection("/lib/shim.so", InjectionEnv::new("read", 2, 5));
        assert_eq!(injected.preload.as_deref(), Some(std::path::Path::new("/lib/shim.so")));
        assert_eq!(injected.injection.unwrap().func(), "read");
    }
}
