//! Driver-side construction of the shim's environment protocol.

/// One injection request, rendered as environment variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionEnv {
    func: String,
    call: u32,
    errno: i32,
}

impl InjectionEnv {
    /// Fail the `call`-th call to `func` with errno `errno`.
    pub fn new(func: impl Into<String>, call: u32, errno: i32) -> Self {
        InjectionEnv {
            func: func.into(),
            call,
            errno,
        }
    }

    /// The `(name, value)` pairs to set on the child process.
    pub fn vars(&self) -> Vec<(String, String)> {
        vec![
            ("AFEX_FUNC".to_owned(), self.func.clone()),
            ("AFEX_CALL".to_owned(), self.call.to_string()),
            ("AFEX_ERRNO".to_owned(), self.errno.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_render_protocol() {
        let e = InjectionEnv::new("malloc", 3, 12);
        let vars = e.vars();
        assert!(vars.contains(&("AFEX_FUNC".into(), "malloc".into())));
        assert!(vars.contains(&("AFEX_CALL".into(), "3".into())));
        assert!(vars.contains(&("AFEX_ERRNO".into(), "12".into())));
    }
}
