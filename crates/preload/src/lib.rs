//! Real library-level fault injection via `LD_PRELOAD` (the LFI mechanism).
//!
//! The simulated targets in `afex-targets` exercise the search algorithm;
//! this crate exercises the *injection mechanism itself* the way LFI does:
//! a `cdylib` interposed with `LD_PRELOAD` that wraps selected libc
//! functions, counts calls, and fails the configured call with a chosen
//! errno. The driver side ([`config`]) builds the environment-variable
//! protocol; the shim side ([`shim`], compiled into the `cdylib`) reads it
//! at first interception.
//!
//! Protocol (all optional; the shim is inert without `AFEX_FUNC`):
//!
//! | Variable | Meaning |
//! |---|---|
//! | `AFEX_FUNC` | function to fail: `malloc`, `read`, `fopen`, `close` |
//! | `AFEX_CALL` | 1-based call number to fail (default 1) |
//! | `AFEX_ERRNO` | errno value to set (default: function-appropriate) |
//! | `AFEX_SIZE` | only `malloc` calls of exactly this size count |
//! | `AFEX_LOG` | file the shim logs performed injections to ([`log`]) |
//!
//! # Examples
//!
//! ```no_run
//! use afex_preload::config::InjectionEnv;
//! use std::process::Command;
//!
//! let env = InjectionEnv::new("read", 2, 5); // Fail 2nd read with EIO.
//! let status = Command::new("./victim")
//!     .env("LD_PRELOAD", "target/debug/libafex_preload.so")
//!     .envs(env.vars())
//!     .status()
//!     .unwrap();
//! assert!(!status.success());
//! ```

pub mod config;
pub mod locate;
pub mod log;
pub mod shim;
