//! The machine-readable shim log: how an injection performed inside a
//! real process reaches the driver.
//!
//! When the `AFEX_LOG` protocol variable names a file, the shim records
//! every injection it performs there — the intercepted function, the call
//! number, the errno it set, and the stack captured at the injection
//! point (glibc `backtrace` resolved through `dladdr`). The driver reads
//! the file after reaping the child and turns each entry into an
//! injection record, which is where a real process's clustering trace
//! comes from.
//!
//! The format is deliberately trivial — one tab-separated line per
//! injection, stack frames joined with `>`:
//!
//! ```text
//! malloc\t1\t12\tvictim+0x1a2b>libafex_preload.so+0x3c4d>malloc
//! ```
//!
//! The shim writes the whole log atomically (temp file + rename in the
//! same directory), so the driver normally sees either no file or a
//! complete one. The parser still heals a torn tail the way the corpus
//! exporter does — a final line without its newline, the mark of a
//! process dying mid-write on a filesystem where the rename discipline
//! broke down, is dropped rather than corrupting the whole read.

/// One injection the shim performed, as parsed back from the log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShimLogEntry {
    /// Name of the intercepted libc function.
    pub func: String,
    /// 1-based call number that was failed.
    pub call: u32,
    /// The errno value the shim set.
    pub errno: i32,
    /// Stack frames at the injection point, outermost first. The
    /// innermost frame is the interposed function itself.
    pub stack: Vec<String>,
}

impl ShimLogEntry {
    /// Renders the entry as one log line (no trailing newline).
    pub fn render(&self) -> String {
        format!(
            "{}\t{}\t{}\t{}",
            self.func,
            self.call,
            self.errno,
            self.stack.join(">")
        )
    }

    /// Parses one complete log line.
    pub fn parse(line: &str) -> Option<ShimLogEntry> {
        let mut parts = line.splitn(4, '\t');
        let func = parts.next()?.to_owned();
        let call = parts.next()?.parse().ok()?;
        let errno = parts.next()?.parse().ok()?;
        let stack = match parts.next() {
            None | Some("") => Vec::new(),
            Some(s) => s.split('>').map(str::to_owned).collect(),
        };
        if func.is_empty() {
            return None;
        }
        Some(ShimLogEntry {
            func,
            call,
            errno,
            stack,
        })
    }
}

/// Parses a shim log's text into its entries. Only lines terminated by a
/// newline count — a torn trailing line is dropped (torn-tail healing),
/// and malformed complete lines are skipped rather than failing the whole
/// read (the log is advisory sensor data, not the source of truth for
/// pass/fail).
pub fn parse_log(text: &str) -> Vec<ShimLogEntry> {
    let complete = text.rfind('\n').map_or(0, |i| i + 1);
    text[..complete]
        .lines()
        .filter_map(ShimLogEntry::parse)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> ShimLogEntry {
        ShimLogEntry {
            func: "malloc".into(),
            call: 3,
            errno: 12,
            stack: vec!["victim+0x10".into(), "malloc".into()],
        }
    }

    #[test]
    fn entries_roundtrip() {
        let e = entry();
        assert_eq!(ShimLogEntry::parse(&e.render()), Some(e.clone()));
        let bare = ShimLogEntry {
            stack: vec![],
            ..entry()
        };
        assert_eq!(ShimLogEntry::parse(&bare.render()), Some(bare));
    }

    #[test]
    fn torn_tail_is_dropped() {
        let full = format!("{}\n", entry().render());
        assert_eq!(parse_log(&full).len(), 1);
        // The same bytes without the final newline: a torn write.
        let torn = entry().render();
        assert!(parse_log(&torn).is_empty());
        // A complete line followed by a torn one keeps the complete one.
        let mixed = format!("{}\nmalloc\t1", entry().render());
        assert_eq!(parse_log(&mixed).len(), 1);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let text = "not a log line\nmalloc\tx\t12\t\n";
        assert!(parse_log(text).is_empty());
        let ok = format!("garbage\n{}\n", entry().render());
        assert_eq!(parse_log(&ok).len(), 1);
    }
}
