//! End-to-end tests of the LD_PRELOAD shim against the victim binary.
//!
//! These run real processes with the real interposition mechanism — the
//! part of LFI the in-process facade cannot exercise. The tests set the
//! `AFEX_*` protocol variables directly so that this test binary does not
//! link the shim's interposed symbols itself.

use afex_preload::locate;
use afex_preload::log::parse_log;
use std::path::PathBuf;
use std::process::Command;

/// Path of the built cdylib — the shared runtime resolver (honoring
/// `AFEX_SHIM_PATH`, then searching next to the running executable), the
/// same one the real-process executor uses, instead of the old hardcoded
/// `target/{debug,release}` guess that broke under custom target dirs.
fn shim_path() -> PathBuf {
    locate::shim_path().expect("shim cdylib must be built alongside this test binary")
}

fn victim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_victim"))
}

fn preloaded(func: &str, call: u32, errno: i32) -> Command {
    let mut c = victim();
    c.env("LD_PRELOAD", shim_path())
        .env("AFEX_FUNC", func)
        .env("AFEX_CALL", call.to_string())
        .env("AFEX_ERRNO", errno.to_string());
    if func == "malloc" {
        // Count only the victim's own distinctive allocations, not the
        // Rust runtime's startup mallocs (LFI-style argument predicate).
        c.env("AFEX_SIZE", "4242");
    }
    c
}

#[test]
fn shim_library_was_built() {
    assert!(
        shim_path().exists(),
        "cdylib missing at {}",
        shim_path().display()
    );
}

#[test]
fn victim_works_without_shim() {
    let out = victim().args(["alloc", "4"]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn victim_works_with_inert_shim() {
    // Preloaded but no AFEX_FUNC: pure pass-through.
    let out = victim()
        .env("LD_PRELOAD", shim_path())
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn injected_malloc_failure_is_caught_by_checked_victim() {
    let out = preloaded("malloc", 1, 12)
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("malloc"), "{err}");
    assert!(err.contains("errno 12"), "{err}");
}

#[test]
fn injected_malloc_failure_crashes_unchecked_victim() {
    let out = preloaded("malloc", 1, 12)
        .args(["alloc-unchecked", "4"])
        .output()
        .unwrap();
    // Killed by a signal: SIGSEGV in release builds, SIGABRT in debug
    // builds (rustc's inserted null-pointer check panics without
    // unwinding). Either way the process dies abnormally — the crash the
    // unchecked code path exists to demonstrate.
    assert_eq!(out.status.code(), None, "expected signal death: {out:?}");
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        let sig = out.status.signal();
        assert!(sig == Some(11) || sig == Some(6), "{out:?}");
    }
}

#[test]
fn injected_read_failure_with_chosen_errno() {
    let out = preloaded("read", 1, 5)
        .args(["read-file", "/etc/hostname"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("read failed: errno 5"), "{err}");
}

#[test]
fn call_number_targets_the_exact_call() {
    // The victim mallocs 4 times; failing call #4 still fails it, while
    // failing call #5 never triggers.
    let fail4 = preloaded("malloc", 1, 12)
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert_eq!(fail4.status.code(), Some(1));
    let miss = preloaded("malloc", 999, 12)
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert!(miss.status.success(), "{miss:?}");
}

#[test]
fn shim_writes_the_injection_log() {
    let dir = std::env::temp_dir().join(format!("afex-shimlog-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("shim.log");
    let out = preloaded("malloc", 1, 12)
        .env("AFEX_LOG", &log)
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let text = std::fs::read_to_string(&log).expect("shim must write the log");
    let entries = parse_log(&text);
    assert_eq!(entries.len(), 1, "{text}");
    assert_eq!(entries[0].func, "malloc");
    assert_eq!(entries[0].call, 1);
    assert_eq!(entries[0].errno, 12);
    // The captured stack excludes the shim's own frames; whatever else
    // symbolizes, the victim object itself must appear on it.
    assert!(
        entries[0].stack.iter().any(|f| f.contains("victim")),
        "stack lacks the victim: {:?}",
        entries[0].stack
    );
    // No temp file may survive the atomic write.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(leftovers.is_empty(), "{leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missed_injection_writes_no_log() {
    let dir = std::env::temp_dir().join(format!("afex-shimlog-miss-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("shim.log");
    let out = preloaded("malloc", 999, 12)
        .env("AFEX_LOG", &log)
        .args(["alloc", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(!log.exists(), "untriggered plan must leave no log");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spin_victim_fails_gracefully_on_injected_malloc() {
    // The spin mode's one allocation is checked: injecting it exercises
    // the graceful-exit path rather than the hang.
    let out = preloaded("malloc", 1, 12).args(["spin"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("malloc failed before spin"), "{err}");
}

#[test]
fn injected_close_failure() {
    let out = preloaded("close", 1, 9)
        .args(["read-file", "/etc/hostname"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("close failed"), "{err}");
}
