//! The `proc:*` target family: fault spaces over *real processes*.
//!
//! Every other target in this crate simulates its system under test; a
//! proc target describes a live binary — the bundled `victim` program in
//! one of its workload modes — explored through the `LD_PRELOAD` shim.
//! The space keeps the paper's `<testID, functionName, callNumber>`
//! shape, and [`ProcTargetSpace::plan_for`] maps each point to the
//! [`ProcessPlan`] the real-process executor (in `afex-core`) spawns,
//! sandboxes, and watches.
//!
//! The function axis is the shim's interposition set. Not every mode
//! calls every function: points naming a function the workload never
//! reaches simply never trigger — the fault-space "holes" a black-box
//! explorer has to discover, exactly as on the simulated targets.

use afex_inject::Func;
use afex_preload::config::{InjectionEnv, ProcessPlan};
use afex_space::{Axis, AxisKind, FaultSpace, Point, Value};
use std::path::PathBuf;
use std::sync::Arc;

/// The functions the preload shim interposes — the `function` axis of
/// every proc space.
pub const PROC_FUNCS: [Func; 4] = [Func::Malloc, Func::Read, Func::Fopen, Func::Close];

/// The victim's distinctive allocation size: `malloc` injections carry
/// this as an argument predicate so only the workload's own allocations
/// count toward the call number, never the Rust runtime's startup
/// allocations (LFI-style injection-point argument filtering).
pub const VICTIM_ALLOC_SIZE: usize = 4242;

/// A workload mode of the bundled victim binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimMode {
    /// `read-file`: open/read/close loop with graceful error handling.
    ReadFile,
    /// `alloc`: checked allocations; injected failures exit gracefully.
    Alloc,
    /// `alloc-unchecked`: writes through unchecked `malloc` results — an
    /// injected allocation failure crashes the live process (the Apache
    /// Fig. 7 bug in miniature).
    AllocUnchecked,
    /// `spin`: one checked allocation, then no progress forever — the
    /// watchdog's hang-classification case.
    Spin,
}

impl VictimMode {
    /// All modes, in canonical order.
    pub const ALL: [VictimMode; 4] = [
        VictimMode::ReadFile,
        VictimMode::Alloc,
        VictimMode::AllocUnchecked,
        VictimMode::Spin,
    ];

    /// The mode's spelling in target names (`proc:victim-<mode>`) and as
    /// the victim's first argument.
    pub fn name(self) -> &'static str {
        match self {
            VictimMode::ReadFile => "read-file",
            VictimMode::Alloc => "alloc",
            VictimMode::AllocUnchecked => "alloc-unchecked",
            VictimMode::Spin => "spin",
        }
    }

    /// Parses a mode name.
    pub fn from_name(s: &str) -> Option<VictimMode> {
        VictimMode::ALL.iter().copied().find(|m| m.name() == s)
    }

    /// The victim's command line for this mode's workload.
    fn workload_args(self) -> Vec<String> {
        match self {
            VictimMode::ReadFile => vec!["read-file".into(), "/etc/hostname".into()],
            VictimMode::Alloc => vec!["alloc".into(), "4".into()],
            VictimMode::AllocUnchecked => vec!["alloc-unchecked".into(), "4".into()],
            VictimMode::Spin => vec!["spin".into()],
        }
    }
}

/// A fault space bound to a real binary. Clones are cheap (the space is
/// behind an `Arc`), matching [`TargetSpace`](crate::spaces::TargetSpace)
/// so the campaign runner treats both families alike.
#[derive(Debug, Clone)]
pub struct ProcTargetSpace {
    space: Arc<FaultSpace>,
    funcs: Vec<Func>,
    calls: Vec<u32>,
    mode: VictimMode,
    program: PathBuf,
    shim: PathBuf,
}

impl ProcTargetSpace {
    /// `Φ_proc`: 1 workload × 4 functions × call numbers {0, 1, 2, 3, 4}
    /// = 20 faults per mode. Call number 0 means "no injection" (the
    /// bare workload, as on coreutils); the paths are the victim binary
    /// and the interposition cdylib.
    pub fn victim(mode: VictimMode, program: PathBuf, shim: PathBuf) -> Self {
        let calls: Vec<u32> = (0..=4).collect();
        let space = FaultSpace::new(vec![
            Axis::int_range("testID", 0, 0),
            Axis::symbolic("function", PROC_FUNCS.iter().map(|f| f.name().to_owned())),
            Axis::new(
                "callNumber",
                calls.iter().map(|&c| Value::Int(c as i64)).collect(),
                AxisKind::Set,
            ),
        ])
        .expect("canonical axes are non-empty");
        ProcTargetSpace {
            space: Arc::new(space),
            funcs: PROC_FUNCS.to_vec(),
            calls,
            mode,
            program,
            shim,
        }
    }

    /// The target's canonical name, `proc:victim-<mode>`.
    pub fn name(&self) -> String {
        format!("proc:victim-{}", self.mode.name())
    }

    /// The workload mode.
    pub fn mode(&self) -> VictimMode {
        self.mode
    }

    /// The underlying fault space.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// A shared handle to the fault space.
    pub fn space_arc(&self) -> Arc<FaultSpace> {
        Arc::clone(&self.space)
    }

    /// Decodes a point into (test id, process plan).
    ///
    /// The injected errno is the first entry of the function's fault
    /// profile — the same "most representative errno" choice the
    /// simulated spaces make. `malloc` plans carry the
    /// [`VICTIM_ALLOC_SIZE`] argument predicate.
    ///
    /// # Panics
    ///
    /// Panics if the point does not address this space.
    pub fn plan_for(&self, p: &Point) -> (usize, ProcessPlan) {
        self.space
            .check(p)
            .expect("point must address the proc target space");
        let test_id = p[0];
        let func = self.funcs[p[1]];
        let call = self.calls[p[2]];
        let plan = ProcessPlan::bare(&self.program, self.mode.workload_args());
        if call == 0 {
            return (test_id, plan);
        }
        let errno = func.fault_profile().errnos[0];
        let mut env = InjectionEnv::new(func.name(), call, errno.code());
        if func == Func::Malloc {
            env = env.with_size(VICTIM_ALLOC_SIZE);
        }
        (test_id, plan.with_injection(&self.shim, env))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(mode: VictimMode) -> ProcTargetSpace {
        ProcTargetSpace::victim(mode, "/bin/victim".into(), "/lib/shim.so".into())
    }

    #[test]
    fn proc_space_is_20_points_per_mode() {
        for mode in VictimMode::ALL {
            let t = ts(mode);
            assert_eq!(t.space().len(), 20, "{}", t.name());
            assert_eq!(t.space().arity(), 3);
        }
    }

    #[test]
    fn mode_names_roundtrip() {
        for mode in VictimMode::ALL {
            assert_eq!(VictimMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(VictimMode::from_name("nosuch"), None);
        assert_eq!(ts(VictimMode::Spin).name(), "proc:victim-spin");
    }

    #[test]
    fn call_zero_is_the_bare_workload() {
        let (test, plan) = ts(VictimMode::Alloc).plan_for(&Point::new(vec![0, 2, 0]));
        assert_eq!(test, 0);
        assert!(plan.injection.is_none());
        assert!(plan.preload.is_none());
        assert_eq!(plan.args[0], "alloc");
    }

    #[test]
    fn malloc_plans_carry_the_size_predicate() {
        // Function 0 = malloc, call index 1 = call #1.
        let (_, plan) = ts(VictimMode::AllocUnchecked).plan_for(&Point::new(vec![0, 0, 1]));
        let env = plan.injection.expect("injecting plan");
        assert_eq!(env.func(), "malloc");
        let vars = env.vars();
        assert!(vars.contains(&("AFEX_SIZE".into(), VICTIM_ALLOC_SIZE.to_string())));
        assert_eq!(
            plan.preload.as_deref(),
            Some(std::path::Path::new("/lib/shim.so"))
        );
        assert_eq!(plan.args, vec!["alloc-unchecked".to_owned(), "4".to_owned()]);
    }

    #[test]
    fn non_malloc_plans_have_no_size_predicate() {
        // Function 1 = read, call index 2 = call #2.
        let (_, plan) = ts(VictimMode::ReadFile).plan_for(&Point::new(vec![0, 1, 2]));
        let env = plan.injection.expect("injecting plan");
        assert_eq!(env.func(), "read");
        assert!(!env.vars().iter().any(|(k, _)| k == "AFEX_SIZE"));
    }
}
