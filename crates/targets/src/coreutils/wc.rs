//! `wc` — count lines, words and bytes.

use super::{alloc, emit, flush, startup, MODULE};
use crate::harness::RunError;
use crate::vfs::Vfs;
use afex_inject::{Func, LibcEnv};

/// Block id base for `wc` (ids 90–99).
const B: u32 = 90;

/// Counts of one `wc` invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counts {
    /// Newline count.
    pub lines: usize,
    /// Whitespace-separated word count.
    pub words: usize,
    /// Byte count.
    pub bytes: usize,
}

/// Counts `path`'s contents.
pub fn run(env: &LibcEnv, vfs: &Vfs, path: &str) -> Result<Counts, RunError> {
    let _f = env.frame("wc_main");
    startup(env);
    env.block(MODULE, B);
    alloc(env, Func::Malloc)?; // Read buffer.
    let data = vfs.read_all(env, path).map_err(|e| {
        env.block(MODULE, B + 1); // Recovery: diagnostic.
        RunError::Fault(e.errno())
    })?;
    env.block(MODULE, B + 2);
    let text = String::from_utf8_lossy(&data);
    let counts = Counts {
        lines: text.matches('\n').count(),
        words: text.split_whitespace().count(),
        bytes: data.len(),
    };
    emit(
        env,
        &format!("{} {} {} {path}", counts.lines, counts.words, counts.bytes),
    )?;
    flush(env)?;
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    #[test]
    fn counts_are_correct() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"one two\nthree\n");
        let c = run(&env, &vfs, "/f").unwrap();
        assert_eq!(
            c,
            Counts {
                lines: 2,
                words: 3,
                bytes: 14
            }
        );
    }

    #[test]
    fn empty_file() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/e", b"");
        let c = run(&env, &vfs, "/e").unwrap();
        assert_eq!(c.bytes, 0);
        assert_eq!(c.lines, 0);
    }

    #[test]
    fn malloc_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"x");
        assert_eq!(run(&env, &vfs, "/f"), Err(RunError::Fault(Errno::ENOMEM)));
    }

    #[test]
    fn read_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"x");
        assert_eq!(run(&env, &vfs, "/f"), Err(RunError::Fault(Errno::EIO)));
    }
}
