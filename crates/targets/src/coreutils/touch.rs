//! `touch` — create files / update timestamps.
//!
//! Uses `clock_gettime` for the new timestamp; a clock failure is handled
//! gracefully (fall back to epoch), matching the mostly-gray
//! `clock_gettime` column of Fig. 1.

use super::{startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Errno, Func, LibcEnv};

/// Block id base for `touch` (ids 80–89).
const B: u32 = 80;

/// Touches `path`: creates it if missing.
pub fn run(env: &LibcEnv, vfs: &Vfs, path: &str) -> RunResult {
    let _f = env.frame("touch_main");
    startup(env);
    env.block(MODULE, B);
    // Timestamp for the metadata update; failure falls back to epoch.
    if env.call(Func::ClockGettime).failed() {
        env.block(MODULE, B + 1); // Graceful: epoch fallback.
    }
    match vfs.stat(env, path) {
        Ok(_) => {
            env.block(MODULE, B + 2); // Exists: timestamp-only update.
            Ok(())
        }
        Err(e) if e.errno() == Errno::ENOENT => {
            env.block(MODULE, B + 3);
            let fd = vfs.create(env, path).map_err(|e| {
                env.block(MODULE, B + 4); // Recovery: cannot create.
                RunError::Fault(e.errno())
            })?;
            vfs.close(env, fd).map_err(|e| {
                env.block(MODULE, B + 5);
                RunError::Fault(e.errno())
            })
        }
        Err(e) => {
            env.block(MODULE, B + 6); // Recovery: stat diagnostic.
            Err(RunError::Fault(e.errno()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    #[test]
    fn creates_missing_file() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        run(&env, &vfs, "/new").unwrap();
        assert!(vfs.file_exists("/new"));
    }

    #[test]
    fn existing_file_is_left_alone() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"keep");
        run(&env, &vfs, "/f").unwrap();
        assert_eq!(vfs.contents("/f").unwrap(), b"keep");
        assert_eq!(env.call_count(Func::Open), 0);
    }

    #[test]
    fn clock_fault_is_tolerated() {
        let env = LibcEnv::new(FaultPlan::single(Func::ClockGettime, 1, Errno::EINVAL));
        let vfs = Vfs::new();
        run(&env, &vfs, "/new").unwrap();
        assert!(vfs.file_exists("/new"));
        assert!(env.coverage().covers(MODULE, B + 1));
    }

    #[test]
    fn stat_io_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Stat, 1, Errno::EACCES));
        let vfs = Vfs::new();
        assert_eq!(run(&env, &vfs, "/x"), Err(RunError::Fault(Errno::EACCES)));
    }

    #[test]
    fn create_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EDQUOT));
        let vfs = Vfs::new();
        assert_eq!(run(&env, &vfs, "/x"), Err(RunError::Fault(Errno::EDQUOT)));
    }
}
