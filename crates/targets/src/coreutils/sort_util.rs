//! `sort` — sort lines of a text file.
//!
//! Grows its line table with `realloc` as input is consumed, so large
//! inputs expose multiple realloc injection points.

use super::{alloc, emit, flush, startup, MODULE};
use crate::harness::RunError;
use crate::vfs::Vfs;
use afex_inject::{Func, LibcEnv};

/// Block id base for `sort` (ids 100–109).
const B: u32 = 100;

/// Lines per line-table growth step (each step is one `realloc`).
const GROW_STEP: usize = 4;

/// Sorts `path`'s lines, returning them in order.
pub fn run(env: &LibcEnv, vfs: &Vfs, path: &str) -> Result<Vec<String>, RunError> {
    let _f = env.frame("sort_main");
    startup(env);
    env.block(MODULE, B);
    alloc(env, Func::Malloc)?; // Initial line table.
    let data = vfs.read_all(env, path).map_err(|e| {
        env.block(MODULE, B + 1); // Recovery: diagnostic.
        RunError::Fault(e.errno())
    })?;
    env.block(MODULE, B + 2);
    let mut lines: Vec<String> = Vec::new();
    for line in String::from_utf8_lossy(&data).lines() {
        if lines.len() % GROW_STEP == GROW_STEP - 1 {
            // Table full: grow it.
            alloc(env, Func::Realloc)?;
            env.block(MODULE, B + 3);
        }
        lines.push(line.to_owned());
    }
    lines.sort();
    for l in &lines {
        emit(env, l)?;
    }
    flush(env)?;
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    fn fixture(lines: usize) -> Vfs {
        let vfs = Vfs::new();
        let text: String = (0..lines).rev().map(|i| format!("line{i:03}\n")).collect();
        vfs.seed_file("/in", text.as_bytes());
        vfs
    }

    #[test]
    fn sorts_lines() {
        let env = LibcEnv::fault_free();
        let out = run(&env, &fixture(5), "/in").unwrap();
        assert_eq!(out[0], "line000");
        assert_eq!(out[4], "line004");
    }

    #[test]
    fn reallocs_scale_with_input() {
        let env = LibcEnv::fault_free();
        run(&env, &fixture(10), "/in").unwrap();
        // 10 lines with GROW_STEP=4 → grows at lines 4 and 8.
        assert_eq!(env.call_count(Func::Realloc), 2);
    }

    #[test]
    fn second_realloc_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Realloc, 2, Errno::ENOMEM));
        assert_eq!(
            run(&env, &fixture(10), "/in"),
            Err(RunError::Fault(Errno::ENOMEM))
        );
    }

    #[test]
    fn small_input_never_reallocs() {
        let env = LibcEnv::new(FaultPlan::single(Func::Realloc, 1, Errno::ENOMEM));
        // 3 lines never grow the table, so the planned fault never fires.
        let out = run(&env, &fixture(3), "/in").unwrap();
        assert_eq!(out.len(), 3);
        assert!(env.injections().is_empty());
    }

    #[test]
    fn putc_fault_mid_output() {
        let env = LibcEnv::new(FaultPlan::single(Func::Putc, 2, Errno::EIO));
        assert_eq!(
            run(&env, &fixture(5), "/in"),
            Err(RunError::Fault(Errno::EIO))
        );
    }
}
