//! The coreutils 8.1 stand-in: ten UNIX utilities with a 29-test suite.
//!
//! §7.2 builds `Φ_coreutils` from 29 suite tests × 19 libc functions × 3
//! call numbers (0 = no injection) = 1,653 faults. The utilities here are
//! small, modular programs over the in-memory VFS; like the real ones they
//! initialize the locale machinery at startup (ignoring failures — which
//! is why the locale columns of Fig. 1 are gray), allocate scratch buffers,
//! and mostly handle I/O errors by printing a diagnostic and exiting
//! non-zero (a graceful *test failure*, not a crash).
//!
//! Allocation-failure accounting is engineered to reproduce §7.5: across
//! the `ln` and `mv` tests, exactly 28 memory-allocation faults (malloc /
//! calloc / realloc × call numbers 1–2) trigger and cause test failures —
//! the "28 scenarios" of Table 6. `ln` performs 2 mallocs, 2 callocs and
//! 1 realloc per run (5 × 4 tests = 20); `mv` performs 2 mallocs
//! (2 × 4 tests = 8).

pub mod cat;
pub mod cp;
pub mod ln;
pub mod ls;
pub mod mkdir_util;
pub mod mv;
pub mod rm;
pub mod sort_util;
pub mod suite;
pub mod touch;
pub mod wc;

pub use suite::{Coreutils, TEST_NAMES};

use crate::harness::{RunError, RunResult};
use afex_inject::{Errno, Func, LibcEnv};

/// The module name under which coreutils blocks are recorded.
pub const MODULE: &str = "coreutils";

/// Total declared basic blocks across all ten utilities.
pub const TOTAL_BLOCKS: usize = 176;

/// Common startup sequence: locale initialization, as in real coreutils.
/// Failures are deliberately ignored — `setlocale`/`textdomain` failing
/// only degrades message translation (these columns are gray in Fig. 1).
pub fn startup(env: &LibcEnv) {
    env.block(MODULE, 0);
    let _ = env.call(Func::Setlocale);
    let _ = env.call(Func::Bindtextdomain);
    let _ = env.call(Func::Textdomain);
}

/// Allocates a scratch buffer; on failure the utility prints a diagnostic
/// and exits non-zero, like coreutils' `xalloc` wrappers do on ENOMEM.
pub fn alloc(env: &LibcEnv, func: Func) -> RunResult {
    if env.call(func).failed() {
        return Err(RunError::Fault(Errno::ENOMEM));
    }
    Ok(())
}

/// Emits one line of output through the stream layer (`putc` + implicit
/// buffering); an I/O error is a graceful non-zero exit.
pub fn emit(env: &LibcEnv, _line: &str) -> RunResult {
    if let afex_inject::CallResult::Fail(e) = env.call(Func::Putc) {
        return Err(RunError::Fault(e));
    }
    Ok(())
}

/// Flushes output at exit; a flush error is a graceful non-zero exit.
pub fn flush(env: &LibcEnv) -> RunResult {
    if let afex_inject::CallResult::Fail(e) = env.call(Func::Fflush) {
        return Err(RunError::Fault(e));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    #[test]
    fn startup_ignores_locale_failures() {
        let env = LibcEnv::new(FaultPlan::single(Func::Setlocale, 1, Errno::ENOMEM));
        startup(&env); // Must not panic or error.
        assert_eq!(env.call_count(Func::Setlocale), 1);
    }

    #[test]
    fn alloc_propagates_enomem() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        assert_eq!(
            alloc(&env, Func::Malloc),
            Err(RunError::Fault(Errno::ENOMEM))
        );
        assert!(alloc(&env, Func::Malloc).is_ok());
    }

    #[test]
    fn emit_and_flush_propagate_io_errors() {
        let env = LibcEnv::new(FaultPlan::single(Func::Putc, 1, Errno::EIO));
        assert!(emit(&env, "x").is_err());
        assert!(flush(&env).is_ok());
        let env2 = LibcEnv::new(FaultPlan::single(Func::Fflush, 1, Errno::ENOSPC));
        assert!(flush(&env2).is_err());
    }
}
