//! `ln` — make links between files.
//!
//! Allocation pattern (load-bearing for §7.5 / Table 6): every run performs
//! exactly 2 `malloc`s, 2 `calloc`s and 1 `realloc` before any early exit,
//! so each of the five allocation injection points (call numbers 1–2 for
//! malloc/calloc, 1 for realloc) triggers in every `ln` test.

use super::{alloc, startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Func, LibcEnv};

/// Block id base for `ln` (ids 20–29).
const B: u32 = 20;

/// Options for [`run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LnOpts {
    /// `-f`: remove an existing destination first.
    pub force: bool,
    /// `-s`: symbolic instead of hard link.
    pub symbolic: bool,
}

/// Links `src` to `dst`.
pub fn run(env: &LibcEnv, vfs: &Vfs, src: &str, dst: &str, opts: LnOpts) -> RunResult {
    let _f = env.frame("ln_main");
    startup(env);
    env.block(MODULE, B);
    // Argument canonicalization buffers (2 mallocs), option table (2
    // callocs) and a grown path buffer (1 realloc) — all before first I/O.
    alloc(env, Func::Malloc)?;
    alloc(env, Func::Malloc)?;
    alloc(env, Func::Calloc)?;
    alloc(env, Func::Calloc)?;
    alloc(env, Func::Realloc)?;
    env.block(MODULE, B + 1);
    // The source must exist.
    vfs.stat(env, src).map_err(|e| {
        env.block(MODULE, B + 2); // Recovery: missing source diagnostic.
        RunError::Fault(e.errno())
    })?;
    if opts.force && vfs.file_exists(dst) {
        env.block(MODULE, B + 3);
        vfs.unlink(env, dst).map_err(|e| {
            env.block(MODULE, B + 4); // Recovery: cannot remove destination.
            RunError::Fault(e.errno())
        })?;
    }
    env.block(MODULE, B + 5);
    // Creating the directory entry: open(O_CREAT)+close models link()/
    // symlink() at the libc-call level.
    let fd = vfs.create(env, dst).map_err(|e| {
        env.block(MODULE, B + 6); // Recovery: cannot create link.
        RunError::Fault(e.errno())
    })?;
    if opts.symbolic {
        env.block(MODULE, B + 7);
        // A symlink stores the target path.
        vfs.write(env, fd, src.as_bytes()).map_err(|e| {
            let _ = vfs.close(env, fd);
            env.block(MODULE, B + 8);
            RunError::Fault(e.errno())
        })?;
    } else {
        // A hard link shares content.
        let data = vfs.contents(src).unwrap_or_default();
        vfs.write(env, fd, &data).map_err(|e| {
            let _ = vfs.close(env, fd);
            env.block(MODULE, B + 8);
            RunError::Fault(e.errno())
        })?;
    }
    vfs.close(env, fd).map_err(|e| {
        env.block(MODULE, B + 9); // Recovery: close failure diagnostic.
        RunError::Fault(e.errno())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_file("/src.txt", b"payload");
        vfs.seed_file("/existing", b"old");
        vfs
    }

    #[test]
    fn hard_link_copies_content() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(&env, &vfs, "/src.txt", "/dst.txt", LnOpts::default()).unwrap();
        assert_eq!(vfs.contents("/dst.txt").unwrap(), b"payload");
    }

    #[test]
    fn symlink_stores_target_path() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(
            &env,
            &vfs,
            "/src.txt",
            "/lnk",
            LnOpts {
                force: false,
                symbolic: true,
            },
        )
        .unwrap();
        assert_eq!(vfs.contents("/lnk").unwrap(), b"/src.txt");
    }

    #[test]
    fn force_removes_destination() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(
            &env,
            &vfs,
            "/src.txt",
            "/existing",
            LnOpts {
                force: true,
                symbolic: false,
            },
        )
        .unwrap();
        assert_eq!(vfs.contents("/existing").unwrap(), b"payload");
        assert_eq!(env.call_count(Func::Unlink), 1);
    }

    #[test]
    fn allocation_call_pattern_is_exact() {
        // The §7.5 invariant: 2 mallocs, 2 callocs, 1 realloc per run.
        let env = LibcEnv::fault_free();
        run(&env, &fixture(), "/src.txt", "/d1", LnOpts::default()).unwrap();
        assert_eq!(env.call_count(Func::Malloc), 2);
        assert_eq!(env.call_count(Func::Calloc), 2);
        assert_eq!(env.call_count(Func::Realloc), 1);
    }

    #[test]
    fn every_allocation_fault_fails_gracefully() {
        for (f, n) in [
            (Func::Malloc, 1),
            (Func::Malloc, 2),
            (Func::Calloc, 1),
            (Func::Calloc, 2),
            (Func::Realloc, 1),
        ] {
            let env = LibcEnv::new(FaultPlan::single(f, n, Errno::ENOMEM));
            let r = run(&env, &fixture(), "/src.txt", "/d", LnOpts::default());
            assert_eq!(r, Err(RunError::Fault(Errno::ENOMEM)), "{f} #{n}");
        }
    }

    #[test]
    fn missing_source_is_reported() {
        let env = LibcEnv::fault_free();
        let r = run(&env, &fixture(), "/ghost", "/d", LnOpts::default());
        assert_eq!(r, Err(RunError::Fault(Errno::ENOENT)));
    }

    #[test]
    fn open_fault_hits_recovery_block() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::ENOSPC));
        let r = run(&env, &fixture(), "/src.txt", "/d", LnOpts::default());
        assert!(r.is_err());
        assert!(env.coverage().covers(MODULE, B + 6));
    }
}
