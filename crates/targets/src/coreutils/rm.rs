//! `rm` — remove files.

use super::{startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Block id base for `rm` (ids 60–69).
const B: u32 = 60;

/// Removes each of `paths`; `force` suppresses missing-file errors.
pub fn run(env: &LibcEnv, vfs: &Vfs, paths: &[&str], force: bool) -> RunResult {
    let _f = env.frame("rm_main");
    startup(env);
    env.block(MODULE, B);
    for path in paths {
        env.block(MODULE, B + 1);
        match vfs.stat(env, path) {
            Ok(_) => {}
            Err(e) if force => {
                env.block(MODULE, B + 2); // `-f`: silently skip.
                let _ = e;
                continue;
            }
            Err(e) => {
                env.block(MODULE, B + 3); // Recovery: cannot stat.
                return Err(RunError::Fault(e.errno()));
            }
        }
        vfs.unlink(env, path).map_err(|e| {
            env.block(MODULE, B + 4); // Recovery: cannot remove.
            RunError::Fault(e.errno())
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"1");
        vfs.seed_file("/b", b"2");
        vfs
    }

    #[test]
    fn removes_all() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(&env, &vfs, &["/a", "/b"], false).unwrap();
        assert!(!vfs.file_exists("/a"));
        assert!(!vfs.file_exists("/b"));
    }

    #[test]
    fn missing_without_force_errors() {
        let env = LibcEnv::fault_free();
        assert_eq!(
            run(&env, &fixture(), &["/ghost"], false),
            Err(RunError::Fault(Errno::ENOENT))
        );
    }

    #[test]
    fn missing_with_force_is_fine() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(&env, &vfs, &["/ghost", "/a"], true).unwrap();
        assert!(!vfs.file_exists("/a"));
    }

    #[test]
    fn unlink_fault_stops_midway() {
        let env = LibcEnv::new(FaultPlan::single(Func::Unlink, 1, Errno::EBUSY));
        let vfs = fixture();
        assert!(run(&env, &vfs, &["/a", "/b"], false).is_err());
        assert!(vfs.file_exists("/a")); // Injected failure left it in place.
        assert!(vfs.file_exists("/b")); // Never reached.
    }

    #[test]
    fn stat_fault_with_force_skips() {
        // `-f` treats a stat failure like a missing file.
        let env = LibcEnv::new(FaultPlan::single(Func::Stat, 1, Errno::EACCES));
        let vfs = fixture();
        run(&env, &vfs, &["/a", "/b"], true).unwrap();
        assert!(vfs.file_exists("/a")); // Skipped.
        assert!(!vfs.file_exists("/b"));
    }
}
