//! `ls` — list directory contents.
//!
//! The Fig. 1 subject: `ls` touches more of libc than any other utility
//! here (locale, memory, directory traversal, `stat`, streams), which is
//! what makes its fault-space excerpt visibly structured.

use super::{alloc, emit, flush, startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Func, LibcEnv};

/// Block id base for `ls` (ids 0–19 are shared startup + ls).
const B: u32 = 1;

/// Options for [`run`].
#[derive(Debug, Clone, Copy, Default)]
pub struct LsOpts {
    /// `-l`: stat every entry.
    pub long: bool,
    /// `-R`: recurse into sub-directories.
    pub recursive: bool,
}

/// Lists `path`, returning the rendered lines.
pub fn run(env: &LibcEnv, vfs: &Vfs, path: &str, opts: LsOpts) -> Result<Vec<String>, RunError> {
    let _f = env.frame("ls_main");
    startup(env);
    env.block(MODULE, B);
    // Scratch buffer for entry sorting.
    alloc(env, Func::Malloc)?;
    // Remember where we are for recursion.
    if env.call(Func::Getcwd).failed() {
        env.block(MODULE, B + 1); // Recovery: getcwd failure diagnostic.
        return Err(RunError::Fault(afex_inject::Errno::ENOMEM));
    }
    let mut out = Vec::new();
    list_one(env, vfs, path, opts, &mut out, 0)?;
    flush(env)?;
    Ok(out)
}

fn list_one(
    env: &LibcEnv,
    vfs: &Vfs,
    path: &str,
    opts: LsOpts,
    out: &mut Vec<String>,
    depth: u32,
) -> RunResult {
    let _f = env.frame("ls_list_dir");
    env.block(MODULE, B + 2 + depth.min(2));
    let entries = vfs.list_dir(env, path).map_err(|e| {
        env.block(MODULE, B + 6); // Recovery: cannot open directory.
        RunError::Fault(e.errno())
    })?;
    for name in &entries {
        let full = if path == "/" {
            format!("/{name}")
        } else {
            format!("{path}/{name}")
        };
        if opts.long {
            env.block(MODULE, B + 7);
            let size = vfs.stat(env, &full).map_err(|e| {
                env.block(MODULE, B + 8); // Recovery: cannot stat entry.
                RunError::Fault(e.errno())
            })?;
            emit(env, &format!("{size:>8} {name}"))?;
            out.push(format!("{size:>8} {name}"));
        } else {
            emit(env, name)?;
            out.push(name.clone());
        }
        if opts.recursive && vfs.dir_exists(&full) {
            env.block(MODULE, B + 9);
            list_one(env, vfs, &full, opts, out, depth + 1)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        vfs.seed_file("/d/alpha", b"12345");
        vfs.seed_file("/d/beta", b"xy");
        vfs.seed_dir("/d/sub");
        vfs.seed_file("/d/sub/gamma", b"1");
        vfs
    }

    #[test]
    fn plain_listing() {
        let env = LibcEnv::fault_free();
        let out = run(&env, &fixture(), "/d", LsOpts::default()).unwrap();
        assert_eq!(out, vec!["alpha", "beta", "sub"]);
    }

    #[test]
    fn long_listing_stats_entries() {
        let env = LibcEnv::fault_free();
        let out = run(
            &env,
            &fixture(),
            "/d",
            LsOpts {
                long: true,
                recursive: false,
            },
        )
        .unwrap();
        assert_eq!(out[0], "       5 alpha");
        assert_eq!(env.call_count(Func::Stat), 3);
    }

    #[test]
    fn recursive_descends() {
        let env = LibcEnv::fault_free();
        let out = run(
            &env,
            &fixture(),
            "/d",
            LsOpts {
                long: false,
                recursive: true,
            },
        )
        .unwrap();
        assert!(out.contains(&"gamma".to_owned()));
    }

    #[test]
    fn opendir_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Opendir, 1, Errno::EACCES));
        let err = run(&env, &fixture(), "/d", LsOpts::default()).unwrap_err();
        assert_eq!(err, RunError::Fault(Errno::EACCES));
        // The recovery block ran.
        assert!(env.coverage().covers(MODULE, B + 6));
    }

    #[test]
    fn malloc_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        assert!(run(&env, &fixture(), "/d", LsOpts::default()).is_err());
    }

    #[test]
    fn stat_fault_in_long_mode() {
        let env = LibcEnv::new(FaultPlan::single(Func::Stat, 2, Errno::EIO));
        let err = run(
            &env,
            &fixture(),
            "/d",
            LsOpts {
                long: true,
                recursive: false,
            },
        )
        .unwrap_err();
        assert_eq!(err, RunError::Fault(Errno::EIO));
    }
}
