//! `mv` — move (rename) files.
//!
//! Allocation pattern (load-bearing for §7.5 / Table 6): exactly 2
//! `malloc`s per run, no calloc/realloc, both before any early exit.
//! `mv` falls back to copy-then-unlink when `rename` fails with the
//! cross-device errno, exercising a two-stage recovery path.

use super::{alloc, startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Errno, Func, LibcEnv};

/// Block id base for `mv` (ids 30–39).
const B: u32 = 30;

/// Moves `src` to `dst`.
pub fn run(env: &LibcEnv, vfs: &Vfs, src: &str, dst: &str) -> RunResult {
    let _f = env.frame("mv_main");
    startup(env);
    env.block(MODULE, B);
    // Source and destination path buffers.
    alloc(env, Func::Malloc)?;
    alloc(env, Func::Malloc)?;
    env.block(MODULE, B + 1);
    vfs.stat(env, src).map_err(|e| {
        env.block(MODULE, B + 2); // Recovery: missing source.
        RunError::Fault(e.errno())
    })?;
    match vfs.rename(env, src, dst) {
        Ok(()) => {
            env.block(MODULE, B + 3);
            Ok(())
        }
        Err(e) if e.errno() == Errno::EINVAL => {
            // EXDEV-like: cross-device move → copy then unlink.
            env.block(MODULE, B + 4);
            copy_fallback(env, vfs, src, dst)
        }
        Err(e) => {
            env.block(MODULE, B + 5); // Recovery: rename diagnostic.
            Err(RunError::Fault(e.errno()))
        }
    }
}

fn copy_fallback(env: &LibcEnv, vfs: &Vfs, src: &str, dst: &str) -> RunResult {
    let _f = env.frame("mv_copy_fallback");
    env.block(MODULE, B + 6);
    let data = vfs.read_all(env, src).map_err(|e| {
        env.block(MODULE, B + 7);
        RunError::Fault(e.errno())
    })?;
    vfs.write_all(env, dst, &data).map_err(|e| {
        env.block(MODULE, B + 8);
        RunError::Fault(e.errno())
    })?;
    vfs.unlink(env, src).map_err(|e| {
        env.block(MODULE, B + 9); // Recovery: source left behind.
        RunError::Fault(e.errno())
    })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"data");
        vfs
    }

    #[test]
    fn plain_rename() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(&env, &vfs, "/a", "/b").unwrap();
        assert!(!vfs.file_exists("/a"));
        assert_eq!(vfs.contents("/b").unwrap(), b"data");
    }

    #[test]
    fn allocation_pattern_is_exact() {
        let env = LibcEnv::fault_free();
        run(&env, &fixture(), "/a", "/b").unwrap();
        assert_eq!(env.call_count(Func::Malloc), 2);
        assert_eq!(env.call_count(Func::Calloc), 0);
        assert_eq!(env.call_count(Func::Realloc), 0);
    }

    #[test]
    fn both_malloc_faults_fail_gracefully() {
        for n in [1, 2] {
            let env = LibcEnv::new(FaultPlan::single(Func::Malloc, n, Errno::ENOMEM));
            assert_eq!(
                run(&env, &fixture(), "/a", "/b"),
                Err(RunError::Fault(Errno::ENOMEM))
            );
        }
    }

    #[test]
    fn einval_rename_falls_back_to_copy() {
        let env = LibcEnv::new(FaultPlan::single(Func::Rename, 1, Errno::EINVAL));
        let vfs = fixture();
        run(&env, &vfs, "/a", "/b").unwrap();
        assert!(!vfs.file_exists("/a"));
        assert_eq!(vfs.contents("/b").unwrap(), b"data");
        // The fallback actually copied.
        assert!(env.call_count(Func::Read) >= 1);
        assert_eq!(env.call_count(Func::Unlink), 1);
        assert!(env.coverage().covers(MODULE, B + 4));
    }

    #[test]
    fn non_exdev_rename_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Rename, 1, Errno::EACCES));
        let vfs = fixture();
        assert_eq!(
            run(&env, &vfs, "/a", "/b"),
            Err(RunError::Fault(Errno::EACCES))
        );
        // Nothing moved.
        assert!(vfs.file_exists("/a"));
    }

    #[test]
    fn fallback_unlink_fault_leaves_source() {
        let env = LibcEnv::new(afex_inject::FaultPlan::multi(vec![
            afex_inject::AtomicFault::new(Func::Rename, 1, Errno::EINVAL),
            afex_inject::AtomicFault::new(Func::Unlink, 1, Errno::EBUSY),
        ]));
        let vfs = fixture();
        let r = run(&env, &vfs, "/a", "/b");
        assert_eq!(r, Err(RunError::Fault(Errno::EBUSY)));
        // Copy happened but source not removed: both exist (the documented
        // partial-failure state of a cross-device mv).
        assert!(vfs.file_exists("/a"));
        assert!(vfs.file_exists("/b"));
        assert!(env.coverage().covers(MODULE, B + 9));
    }

    #[test]
    fn missing_source() {
        let env = LibcEnv::fault_free();
        assert_eq!(
            run(&env, &fixture(), "/ghost", "/b"),
            Err(RunError::Fault(Errno::ENOENT))
        );
    }
}
