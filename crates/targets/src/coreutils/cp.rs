//! `cp` — copy files, chunked read/write with fsync on request.

use super::{alloc, startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Func, LibcEnv};

/// Block id base for `cp` (ids 40–49).
const B: u32 = 40;

/// Copies `src` to `dst`; `sync` forces an `fsync` before close.
pub fn run(env: &LibcEnv, vfs: &Vfs, src: &str, dst: &str, sync: bool) -> RunResult {
    let _f = env.frame("cp_main");
    startup(env);
    env.block(MODULE, B);
    alloc(env, Func::Malloc)?; // Copy buffer.
    let sfd = vfs.open(env, src).map_err(|e| {
        env.block(MODULE, B + 1); // Recovery: cannot open source.
        RunError::Fault(e.errno())
    })?;
    let dfd = match vfs.create(env, dst) {
        Ok(fd) => fd,
        Err(e) => {
            let _ = vfs.close(env, sfd);
            env.block(MODULE, B + 2); // Recovery: cannot create destination.
            return Err(RunError::Fault(e.errno()));
        }
    };
    let result = copy_loop(env, vfs, sfd, dfd);
    if result.is_ok() && sync {
        env.block(MODULE, B + 3);
        if let Err(e) = vfs.fsync(env, dfd) {
            let _ = vfs.close(env, sfd);
            let _ = vfs.close(env, dfd);
            env.block(MODULE, B + 4); // Recovery: fsync diagnostic.
            return Err(RunError::Fault(e.errno()));
        }
    }
    let c1 = vfs.close(env, sfd);
    let c2 = vfs.close(env, dfd);
    result?;
    c1.map_err(|e| RunError::Fault(e.errno()))?;
    c2.map_err(|e| RunError::Fault(e.errno()))?;
    Ok(())
}

fn copy_loop(env: &LibcEnv, vfs: &Vfs, sfd: u64, dfd: u64) -> RunResult {
    let _f = env.frame("cp_copy_loop");
    env.block(MODULE, B + 5);
    loop {
        let chunk = vfs.read(env, sfd, 1024).map_err(|e| {
            env.block(MODULE, B + 6); // Recovery: read diagnostic.
            RunError::Fault(e.errno())
        })?;
        if chunk.is_empty() {
            return Ok(());
        }
        vfs.write(env, dfd, &chunk).map_err(|e| {
            env.block(MODULE, B + 7); // Recovery: write diagnostic.
            RunError::Fault(e.errno())
        })?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_file("/src", &vec![9u8; 3000]);
        vfs
    }

    #[test]
    fn copies_in_chunks() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        run(&env, &vfs, "/src", "/dst", false).unwrap();
        assert_eq!(vfs.contents("/dst").unwrap().len(), 3000);
        // 3000 bytes = 3 chunks + terminating empty read.
        assert_eq!(env.call_count(Func::Read), 4);
        assert_eq!(env.call_count(Func::Write), 3);
    }

    #[test]
    fn sync_mode_fsyncs() {
        let env = LibcEnv::fault_free();
        run(&env, &fixture(), "/src", "/dst", true).unwrap();
        assert_eq!(env.call_count(Func::Fsync), 1);
    }

    #[test]
    fn write_fault_mid_copy_closes_fds() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 2, Errno::ENOSPC));
        let vfs = fixture();
        assert_eq!(
            run(&env, &vfs, "/src", "/dst", false),
            Err(RunError::Fault(Errno::ENOSPC))
        );
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn fsync_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fsync, 1, Errno::EIO));
        let vfs = fixture();
        assert!(run(&env, &vfs, "/src", "/dst", true).is_err());
        assert_eq!(vfs.open_handles(), 0);
        assert!(env.coverage().covers(MODULE, B + 4));
    }

    #[test]
    fn close_fault_is_reported() {
        let env = LibcEnv::new(FaultPlan::single(Func::Close, 2, Errno::EIO));
        assert!(run(&env, &fixture(), "/src", "/dst", false).is_err());
    }
}
