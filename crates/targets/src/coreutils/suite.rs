//! The coreutils default test suite: 29 tests (the `Xtest` axis of §7.2).

use super::{cat, cp, ln, ls, mkdir_util, mv, rm, sort_util, touch, wc};
use crate::harness::{RunError, RunResult, Target};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Names of the 29 suite tests, in `Xtest` order.
pub const TEST_NAMES: [&str; 29] = [
    "ls_empty",
    "ls_files",
    "ls_long",
    "ls_recursive",
    "ln_hard",
    "ln_symbolic",
    "ln_force",
    "ln_into_dir",
    "mv_rename",
    "mv_into_dir",
    "mv_overwrite",
    "mv_chain",
    "cp_small",
    "cp_large",
    "cp_sync",
    "cat_one",
    "cat_two",
    "cat_big",
    "rm_one",
    "rm_many",
    "rm_force",
    "mkdir_plain",
    "mkdir_parents",
    "touch_new",
    "touch_existing",
    "wc_small",
    "wc_large",
    "sort_small",
    "sort_large",
];

/// The coreutils system under test.
///
/// # Examples
///
/// ```
/// use afex_inject::FaultPlan;
/// use afex_targets::coreutils::Coreutils;
/// use afex_targets::{run_test, Target};
///
/// let cu = Coreutils::new();
/// assert_eq!(cu.num_tests(), 29);
/// let ok = run_test(&cu, 1, &FaultPlan::none());
/// assert_eq!(ok.status, afex_inject::TestStatus::Passed);
/// ```
#[derive(Debug, Default)]
pub struct Coreutils;

impl Coreutils {
    /// Creates the target.
    pub fn new() -> Self {
        Coreutils
    }

    /// The name of suite test `id`.
    pub fn test_name(id: usize) -> &'static str {
        TEST_NAMES[id]
    }
}

fn check(cond: bool, what: &str) -> RunResult {
    if cond {
        Ok(())
    } else {
        Err(RunError::Check(format!("assertion failed: {what}")))
    }
}

/// A directory tree with a few files, shared by several fixtures.
fn tree() -> Vfs {
    let vfs = Vfs::new();
    vfs.seed_dir("/d");
    vfs.seed_file("/d/alpha", b"12345");
    vfs.seed_file("/d/beta", b"xy");
    vfs.seed_dir("/d/sub");
    vfs.seed_file("/d/sub/gamma", b"g");
    vfs.seed_file("/src.txt", b"payload");
    vfs.seed_file("/other", b"old");
    vfs
}

impl Target for Coreutils {
    fn name(&self) -> &str {
        "coreutils"
    }

    fn num_tests(&self) -> usize {
        TEST_NAMES.len()
    }

    fn total_blocks(&self) -> usize {
        super::TOTAL_BLOCKS
    }

    fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult {
        let vfs = tree();
        match test_id {
            // ls.
            0 => {
                vfs.seed_dir("/empty");
                let out = ls::run(env, &vfs, "/empty", ls::LsOpts::default())?;
                check(out.is_empty(), "empty dir lists nothing")
            }
            1 => {
                let out = ls::run(env, &vfs, "/d", ls::LsOpts::default())?;
                check(out == ["alpha", "beta", "sub"], "listing matches")
            }
            2 => {
                let out = ls::run(
                    env,
                    &vfs,
                    "/d",
                    ls::LsOpts {
                        long: true,
                        recursive: false,
                    },
                )?;
                check(out.len() == 3 && out[0].contains("alpha"), "long listing")
            }
            3 => {
                let out = ls::run(
                    env,
                    &vfs,
                    "/d",
                    ls::LsOpts {
                        long: false,
                        recursive: true,
                    },
                )?;
                check(out.contains(&"gamma".to_owned()), "recursive finds gamma")
            }
            // ln.
            4 => {
                ln::run(env, &vfs, "/src.txt", "/hard", ln::LnOpts::default())?;
                check(
                    vfs.contents("/hard").as_deref() == Some(b"payload"),
                    "hard link content",
                )
            }
            5 => {
                ln::run(
                    env,
                    &vfs,
                    "/src.txt",
                    "/sym",
                    ln::LnOpts {
                        force: false,
                        symbolic: true,
                    },
                )?;
                check(
                    vfs.contents("/sym").as_deref() == Some(b"/src.txt"),
                    "symlink target",
                )
            }
            6 => {
                ln::run(
                    env,
                    &vfs,
                    "/src.txt",
                    "/other",
                    ln::LnOpts {
                        force: true,
                        symbolic: false,
                    },
                )?;
                check(
                    vfs.contents("/other").as_deref() == Some(b"payload"),
                    "forced link",
                )
            }
            7 => {
                ln::run(env, &vfs, "/src.txt", "/d/lnk", ln::LnOpts::default())?;
                check(vfs.file_exists("/d/lnk"), "link in subdir")
            }
            // mv.
            8 => {
                mv::run(env, &vfs, "/src.txt", "/moved")?;
                check(
                    !vfs.file_exists("/src.txt") && vfs.file_exists("/moved"),
                    "rename moved the file",
                )
            }
            9 => {
                mv::run(env, &vfs, "/src.txt", "/d/moved")?;
                check(vfs.file_exists("/d/moved"), "moved into dir")
            }
            10 => {
                mv::run(env, &vfs, "/src.txt", "/other")?;
                check(
                    vfs.contents("/other").as_deref() == Some(b"payload"),
                    "overwrote",
                )
            }
            11 => {
                mv::run(env, &vfs, "/d/alpha", "/d/alpha2")?;
                mv::run(env, &vfs, "/d/alpha2", "/d/alpha3")?;
                check(vfs.file_exists("/d/alpha3"), "chained moves")
            }
            // cp.
            12 => {
                cp::run(env, &vfs, "/src.txt", "/copy", false)?;
                check(
                    vfs.contents("/copy").as_deref() == Some(b"payload"),
                    "copied",
                )
            }
            13 => {
                vfs.seed_file("/big", &vec![7u8; 5000]);
                cp::run(env, &vfs, "/big", "/bigcopy", false)?;
                check(
                    vfs.contents("/bigcopy").map(|c| c.len()) == Some(5000),
                    "large copy size",
                )
            }
            14 => {
                cp::run(env, &vfs, "/src.txt", "/synced", true)?;
                check(vfs.file_exists("/synced"), "synced copy")
            }
            // cat.
            15 => {
                let out = cat::run(env, &vfs, &["/src.txt"])?;
                check(out == b"payload", "cat one")
            }
            16 => {
                let out = cat::run(env, &vfs, &["/src.txt", "/other"])?;
                check(out == b"payloadold", "cat two")
            }
            17 => {
                vfs.seed_file("/big", &vec![b'a'; 9000]);
                let out = cat::run(env, &vfs, &["/big"])?;
                check(out.len() == 9000, "cat big")
            }
            // rm.
            18 => {
                rm::run(env, &vfs, &["/src.txt"], false)?;
                check(!vfs.file_exists("/src.txt"), "removed one")
            }
            19 => {
                rm::run(env, &vfs, &["/src.txt", "/other"], false)?;
                check(
                    !vfs.file_exists("/src.txt") && !vfs.file_exists("/other"),
                    "removed many",
                )
            }
            20 => {
                rm::run(env, &vfs, &["/ghost", "/src.txt"], true)?;
                check(!vfs.file_exists("/src.txt"), "force ignores missing")
            }
            // mkdir.
            21 => {
                mkdir_util::run(env, &vfs, "/newdir", false)?;
                check(vfs.dir_exists("/newdir"), "made dir")
            }
            22 => {
                mkdir_util::run(env, &vfs, "/p/q/r", true)?;
                check(vfs.dir_exists("/p/q/r"), "made parents")
            }
            // touch.
            23 => {
                touch::run(env, &vfs, "/fresh")?;
                check(vfs.file_exists("/fresh"), "touched new")
            }
            24 => {
                touch::run(env, &vfs, "/src.txt")?;
                check(
                    vfs.contents("/src.txt").as_deref() == Some(b"payload"),
                    "kept content",
                )
            }
            // wc.
            25 => {
                vfs.seed_file("/text", b"one two\nthree\n");
                let c = wc::run(env, &vfs, "/text")?;
                check(c.lines == 2 && c.words == 3, "wc small")
            }
            26 => {
                let text: String = (0..50).map(|i| format!("word{i}\n")).collect();
                vfs.seed_file("/text", text.as_bytes());
                let c = wc::run(env, &vfs, "/text")?;
                check(c.lines == 50, "wc large")
            }
            // sort.
            27 => {
                vfs.seed_file("/in", b"b\na\nc\n");
                let out = sort_util::run(env, &vfs, "/in")?;
                check(out == ["a", "b", "c"], "sort small")
            }
            28 => {
                let text: String = (0..12).rev().map(|i| format!("l{i:02}\n")).collect();
                vfs.seed_file("/in", text.as_bytes());
                let out = sort_util::run(env, &vfs, "/in")?;
                check(out.first().map(String::as_str) == Some("l00"), "sort large")
            }
            other => Err(RunError::Check(format!("no such test {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{baseline_pass_count, run_test};
    use afex_inject::{Errno, FaultPlan, Func, TestStatus};

    #[test]
    fn all_29_tests_pass_fault_free() {
        assert_eq!(baseline_pass_count(&Coreutils::new()), 29);
    }

    #[test]
    fn test_names_match_count() {
        assert_eq!(TEST_NAMES.len(), Coreutils::new().num_tests());
        assert_eq!(Coreutils::test_name(0), "ls_empty");
    }

    #[test]
    fn ln_tests_fail_on_malloc_injection() {
        let cu = Coreutils::new();
        for t in 4..8 {
            let o = run_test(&cu, t, &FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
            assert_eq!(o.status, TestStatus::Failed, "test {t}");
            assert!(o.triggered());
        }
    }

    #[test]
    fn exactly_28_allocation_faults_break_ln_and_mv() {
        // The §7.5 / Table 6 ground truth: count single-fault allocation
        // scenarios (malloc/calloc/realloc × call 1–2) that fail the ln/mv
        // tests (ids 4–11).
        let cu = Coreutils::new();
        let mut failing = 0;
        for t in 4..12 {
            for f in [Func::Malloc, Func::Calloc, Func::Realloc] {
                for call in 1..=2u32 {
                    let o = run_test(&cu, t, &FaultPlan::single(f, call, Errno::ENOMEM));
                    if o.status.is_failure() && o.triggered() {
                        failing += 1;
                    }
                }
            }
        }
        assert_eq!(failing, 28, "Table 6 expects exactly 28 scenarios");
    }

    #[test]
    fn untargeted_faults_leave_tests_passing() {
        let cu = Coreutils::new();
        // mkdir_plain performs no read; the fault never triggers.
        let o = run_test(&cu, 21, &FaultPlan::single(Func::Read, 1, Errno::EIO));
        assert_eq!(o.status, TestStatus::Passed);
        assert!(!o.triggered());
    }

    #[test]
    fn injection_trace_is_captured_for_clustering() {
        let cu = Coreutils::new();
        let o = run_test(&cu, 1, &FaultPlan::single(Func::Opendir, 1, Errno::EACCES));
        assert_eq!(o.status, TestStatus::Failed);
        let trace = o.injection_trace().unwrap();
        assert!(trace.contains("ls_main"), "{trace}");
        assert!(trace.contains("ls_list_dir"), "{trace}");
    }

    #[test]
    fn coverage_grows_with_fault_injection() {
        // Recovery blocks only run under injection (§7.2's 0.64% effect).
        let cu = Coreutils::new();
        let clean = run_test(&cu, 1, &FaultPlan::none());
        let faulty = run_test(&cu, 1, &FaultPlan::single(Func::Opendir, 1, Errno::EACCES));
        assert!(faulty.coverage.difference(&clean.coverage) > 0);
    }
}
