//! `mkdir` — make directories (with `-p` parents mode).

use super::{startup, MODULE};
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Errno, LibcEnv};

/// Block id base for `mkdir` (ids 70–79).
const B: u32 = 70;

/// Creates `path`; with `parents`, creates missing ancestors and ignores
/// already-existing directories (like `mkdir -p`).
pub fn run(env: &LibcEnv, vfs: &Vfs, path: &str, parents: bool) -> RunResult {
    let _f = env.frame("mkdir_main");
    startup(env);
    env.block(MODULE, B);
    if parents {
        env.block(MODULE, B + 1);
        let mut acc = String::new();
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            acc.push('/');
            acc.push_str(comp);
            match vfs.mkdir(env, &acc) {
                Ok(()) => {}
                Err(e) if e.errno() == Errno::EEXIST => {
                    env.block(MODULE, B + 2); // `-p`: exists is fine.
                }
                Err(e) => {
                    env.block(MODULE, B + 3); // Recovery: diagnostic.
                    return Err(RunError::Fault(e.errno()));
                }
            }
        }
        Ok(())
    } else {
        vfs.mkdir(env, path).map_err(|e| {
            env.block(MODULE, B + 4); // Recovery: diagnostic.
            RunError::Fault(e.errno())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{FaultPlan, Func};

    #[test]
    fn plain_mkdir() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        run(&env, &vfs, "/new", false).unwrap();
        assert!(vfs.dir_exists("/new"));
    }

    #[test]
    fn plain_mkdir_existing_fails() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        assert_eq!(
            run(&env, &vfs, "/d", false),
            Err(RunError::Fault(Errno::EEXIST))
        );
    }

    #[test]
    fn parents_mode_builds_chain() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        run(&env, &vfs, "/a/b/c", true).unwrap();
        assert!(vfs.dir_exists("/a"));
        assert!(vfs.dir_exists("/a/b"));
        assert!(vfs.dir_exists("/a/b/c"));
        assert_eq!(env.call_count(Func::Mkdir), 3);
    }

    #[test]
    fn parents_mode_tolerates_existing() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/a");
        run(&env, &vfs, "/a/b", true).unwrap();
        assert!(vfs.dir_exists("/a/b"));
    }

    #[test]
    fn injected_mkdir_fault_mid_chain() {
        let env = LibcEnv::new(FaultPlan::single(Func::Mkdir, 2, Errno::ENOSPC));
        let vfs = Vfs::new();
        assert_eq!(
            run(&env, &vfs, "/a/b/c", true),
            Err(RunError::Fault(Errno::ENOSPC))
        );
        assert!(vfs.dir_exists("/a"));
        assert!(!vfs.dir_exists("/a/b"));
    }
}
