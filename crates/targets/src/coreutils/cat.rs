//! `cat` — concatenate files to standard output.

use super::{emit, flush, startup, MODULE};
use crate::harness::RunError;
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Block id base for `cat` (ids 50–59).
const B: u32 = 50;

/// Concatenates `paths`, returning the assembled output.
pub fn run(env: &LibcEnv, vfs: &Vfs, paths: &[&str]) -> Result<Vec<u8>, RunError> {
    let _f = env.frame("cat_main");
    startup(env);
    env.block(MODULE, B);
    let mut out = Vec::new();
    for path in paths {
        env.block(MODULE, B + 1);
        let data = vfs.read_all(env, path).map_err(|e| {
            env.block(MODULE, B + 2); // Recovery: per-file diagnostic.
            RunError::Fault(e.errno())
        })?;
        emit(env, &String::from_utf8_lossy(&data))?;
        out.extend_from_slice(&data);
    }
    flush(env)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"one\n");
        vfs.seed_file("/b", b"two\n");
        vfs
    }

    #[test]
    fn concatenates_in_order() {
        let env = LibcEnv::fault_free();
        let out = run(&env, &fixture(), &["/a", "/b"]).unwrap();
        assert_eq!(out, b"one\ntwo\n");
    }

    #[test]
    fn missing_file_is_graceful() {
        let env = LibcEnv::fault_free();
        assert_eq!(
            run(&env, &fixture(), &["/ghost"]),
            Err(RunError::Fault(Errno::ENOENT))
        );
    }

    #[test]
    fn read_fault_second_file() {
        // First file: open(1)+read(1,2)+close(1). Second file read #3 fails.
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 3, Errno::EIO));
        assert_eq!(
            run(&env, &fixture(), &["/a", "/b"]),
            Err(RunError::Fault(Errno::EIO))
        );
    }

    #[test]
    fn putc_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Putc, 1, Errno::EPIPE));
        assert_eq!(
            run(&env, &fixture(), &["/a"]),
            Err(RunError::Fault(Errno::EPIPE))
        );
    }
}
