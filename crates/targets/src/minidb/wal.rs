//! Write-ahead log with an abort-on-log-failure commit policy.
//!
//! Real database engines often deliberately abort when the log cannot be
//! made durable (continuing would risk silent corruption). §7.1 notes that
//! many of the 464 crash scenarios AFEX found were "MySQL aborting the
//! current operation due to the injected fault" — this module is where
//! those clustered aborts come from in the stand-in.

use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;
use std::cell::RefCell;

/// Path of the log file.
pub const WAL_PATH: &str = "/data/wal.log";

/// How [`Wal::commit`] puts records on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WalMode {
    /// Fixed commit: open the log in append mode and write only the new
    /// records, honoring short write counts. Previously committed records
    /// are never touched, so no mid-commit crash can lose them.
    #[default]
    Append,
    /// The historical bug, retained as a specimen for the recovery
    /// oracle: read the whole log (swallowing read faults as an empty
    /// log), re-create (truncate!) the file, and rewrite old + new
    /// records in one buffer. A crash between the truncating create and
    /// a durable rewrite loses *previously committed* records.
    Rewrite,
}

/// A minimal write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    pending: RefCell<Vec<String>>,
    mode: WalMode,
}

impl Wal {
    /// Creates an empty log handle with the fixed (append-only) commit.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Creates an empty log handle with an explicit commit mode.
    pub fn with_mode(mode: WalMode) -> Self {
        Wal {
            pending: RefCell::new(Vec::new()),
            mode,
        }
    }

    /// The commit mode.
    pub fn mode(&self) -> WalMode {
        self.mode
    }

    /// Buffers one record for the next commit.
    pub fn append(&self, record: impl Into<String>) {
        self.pending.borrow_mut().push(record.into());
    }

    /// Number of buffered records.
    pub fn pending_records(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Commits buffered records to the log file.
    ///
    /// Open failures are handled gracefully (the statement is rolled
    /// back), but a *write or fsync* failure after the log was opened
    /// aborts — the engine cannot tell how much of the record hit disk.
    ///
    /// # Panics
    ///
    /// Panics (deliberate abort) on write/fsync failure mid-commit.
    pub fn commit(&self, env: &LibcEnv, vfs: &Vfs) -> RunResult {
        let _f = env.frame("wal_commit");
        env.block(MODULE, 10);
        let records: Vec<String> = self.pending.borrow_mut().drain(..).collect();
        if records.is_empty() {
            return Ok(());
        }
        match self.mode {
            WalMode::Append => self.commit_append(env, vfs, &records),
            WalMode::Rewrite => self.commit_rewrite(env, vfs, &records),
        }
    }

    /// The fixed commit: append-only, short-write-safe.
    fn commit_append(&self, env: &LibcEnv, vfs: &Vfs, records: &[String]) -> RunResult {
        let fd = match vfs.open_append(env, WAL_PATH) {
            Ok(fd) => fd,
            Err(e) => {
                // Recovery: rollback, statement fails gracefully.
                env.block(MODULE, 11);
                return Err(RunError::Fault(e.errno()));
            }
        };
        let mut buf = Vec::new();
        for r in records {
            buf.extend_from_slice(r.as_bytes());
            buf.push(b'\n');
        }
        let mut written = 0usize;
        while written < buf.len() {
            if !env.burn_fuel() {
                let _ = vfs.close(env, fd);
                return Err(RunError::Hang);
            }
            match vfs.write(env, fd, &buf[written..]) {
                // Short counts are honored: the loop completes the record.
                Ok(n) => written += n,
                Err(_) => {
                    env.block(MODULE, 12);
                    panic!("abort: WAL write failed mid-commit, cannot guarantee durability");
                }
            }
        }
        if vfs.fsync(env, fd).is_err() {
            env.block(MODULE, 13);
            panic!("abort: WAL fsync failed, log may be torn");
        }
        if let Err(e) = vfs.close(env, fd) {
            // A close failure after successful fsync is survivable.
            env.block(MODULE, 14);
            return Err(RunError::Fault(e.errno()));
        }
        env.block(MODULE, 15);
        Ok(())
    }

    /// The bug specimen, verbatim: whole-log rewrite through a truncating
    /// create, ignoring the write count.
    fn commit_rewrite(&self, env: &LibcEnv, vfs: &Vfs, records: &[String]) -> RunResult {
        let mut existing = vfs.contents(WAL_PATH).unwrap_or_default();
        let fd = match vfs.create(env, WAL_PATH) {
            Ok(fd) => fd,
            Err(e) => {
                env.block(MODULE, 11);
                return Err(RunError::Fault(e.errno()));
            }
        };
        for r in records {
            existing.extend_from_slice(r.as_bytes());
            existing.push(b'\n');
        }
        if vfs.write(env, fd, &existing).is_err() {
            env.block(MODULE, 12);
            panic!("abort: WAL write failed mid-commit, cannot guarantee durability");
        }
        if vfs.fsync(env, fd).is_err() {
            env.block(MODULE, 13);
            panic!("abort: WAL fsync failed, log may be torn");
        }
        if let Err(e) = vfs.close(env, fd) {
            env.block(MODULE, 14);
            return Err(RunError::Fault(e.errno()));
        }
        env.block(MODULE, 15);
        Ok(())
    }

    /// Replays the log after a restart, returning the recovered records.
    /// A torn tail (a final record without its newline — a crash landed
    /// mid-append) is dropped; every complete record is recovered.
    pub fn recover(&self, env: &LibcEnv, vfs: &Vfs) -> Result<Vec<String>, RunError> {
        let _f = env.frame("wal_recover");
        env.block(MODULE, 16);
        if !vfs.file_exists(WAL_PATH) {
            return Ok(Vec::new());
        }
        let data = vfs.read_all(env, WAL_PATH).map_err(|e| {
            env.block(MODULE, 17); // Recovery: unreadable log diagnostic.
            RunError::Fault(e.errno())
        })?;
        let text = String::from_utf8_lossy(&data);
        let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
        Ok(complete.lines().map(str::to_owned).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_dir("/data");
        vfs
    }

    #[test]
    fn commit_then_recover() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let wal = Wal::new();
        wal.append("insert t 1");
        wal.append("insert t 2");
        wal.commit(&env, &vfs).unwrap();
        assert_eq!(wal.pending_records(), 0);
        let rec = wal.recover(&env, &vfs).unwrap();
        assert_eq!(rec, vec!["insert t 1", "insert t 2"]);
    }

    #[test]
    fn empty_commit_is_free() {
        let env = LibcEnv::fault_free();
        let wal = Wal::new();
        wal.commit(&env, &fixture()).unwrap();
        assert_eq!(env.call_count(Func::Open), 0);
    }

    #[test]
    fn open_fault_rolls_back_gracefully() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EMFILE));
        let wal = Wal::new();
        wal.append("x");
        assert!(wal.commit(&env, &fixture()).is_err());
    }

    #[test]
    #[should_panic(expected = "WAL write failed")]
    fn write_fault_aborts() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        let wal = Wal::new();
        wal.append("x");
        let _ = wal.commit(&env, &fixture());
    }

    #[test]
    #[should_panic(expected = "fsync failed")]
    fn fsync_fault_aborts() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fsync, 1, Errno::EIO));
        let wal = Wal::new();
        wal.append("x");
        let _ = wal.commit(&env, &fixture());
    }

    #[test]
    fn recover_with_no_log_is_empty() {
        let env = LibcEnv::fault_free();
        let wal = Wal::new();
        assert!(wal.recover(&env, &fixture()).unwrap().is_empty());
    }

    #[test]
    fn recover_read_fault_is_graceful() {
        let vfs = fixture();
        vfs.seed_file(WAL_PATH, b"a\nb\n");
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let wal = Wal::new();
        assert!(wal.recover(&env, &vfs).is_err());
    }

    #[test]
    fn recover_drops_torn_tail() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        vfs.seed_file(WAL_PATH, b"insert t 1 a\ninsert t 2 b\ninsert t 3");
        let wal = Wal::new();
        let rec = wal.recover(&env, &vfs).unwrap();
        assert_eq!(rec, vec!["insert t 1 a", "insert t 2 b"]);
    }

    #[test]
    fn append_commit_preserves_call_counts() {
        // The fix must not shift libc call numbering: one open, one
        // write, one fsync, one close per commit — same as the rewrite.
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let wal = Wal::new();
        wal.append("r");
        wal.commit(&env, &vfs).unwrap();
        assert_eq!(env.call_count(Func::Open), 1);
        assert_eq!(env.call_count(Func::Write), 1);
        assert_eq!(env.call_count(Func::Fsync), 1);
        assert_eq!(env.call_count(Func::Close), 1);
    }

    #[test]
    fn append_commit_completes_short_writes() {
        use crate::vfs_fault::{FaultKind, FaultRule, PathMatch, VfsOp};
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        vfs.arm_rules(vec![FaultRule {
            op: VfsOp::Write,
            path: PathMatch::Any,
            nth: 1,
            kind: FaultKind::ShortWrite,
        }]);
        let wal = Wal::new();
        wal.append("insert t 1 payload");
        wal.commit(&env, &vfs).unwrap();
        assert_eq!(
            wal.recover(&env, &vfs).unwrap(),
            vec!["insert t 1 payload"],
            "the commit loop must complete a short write"
        );
        // The retry cost one extra write call.
        assert_eq!(env.call_count(Func::Write), 2);
    }

    #[test]
    fn append_commit_survives_crash_mid_later_commit() {
        // The fixed commit never touches earlier records: a write fault
        // in commit #2 aborts the engine, and after a crash commit #1's
        // record is still recoverable.
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let wal = Wal::new();
        wal.append("insert t 1 first");
        wal.commit(&env, &vfs).unwrap();
        let env2 = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::EIO));
        wal.append("insert t 2 second");
        let aborted = crate::harness::catch_crash(|| wal.commit(&env2, &vfs));
        assert!(aborted.is_err(), "write fault must abort commit #2");
        vfs.crash();
        let env3 = LibcEnv::fault_free();
        let rec = Wal::new().recover(&env3, &vfs).unwrap();
        assert_eq!(rec, vec!["insert t 1 first"]);
    }

    #[test]
    fn rewrite_commit_loses_prior_records_on_crash() {
        // The bug specimen: commit #2 truncates the log (journaled
        // metadata — durable immediately), then the rewrite fails before
        // any fsync. After a crash, commit #1's record is gone.
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let wal = Wal::with_mode(WalMode::Rewrite);
        wal.append("insert t 1 first");
        wal.commit(&env, &vfs).unwrap();
        let env2 = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::EIO));
        wal.append("insert t 2 second");
        let aborted = crate::harness::catch_crash(|| wal.commit(&env2, &vfs));
        assert!(aborted.is_err());
        vfs.crash();
        let env3 = LibcEnv::fault_free();
        let rec = Wal::new().recover(&env3, &vfs).unwrap();
        assert!(rec.is_empty(), "the rewrite bug loses committed records: {rec:?}");
    }
}
