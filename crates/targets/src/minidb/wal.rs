//! Write-ahead log with an abort-on-log-failure commit policy.
//!
//! Real database engines often deliberately abort when the log cannot be
//! made durable (continuing would risk silent corruption). §7.1 notes that
//! many of the 464 crash scenarios AFEX found were "MySQL aborting the
//! current operation due to the injected fault" — this module is where
//! those clustered aborts come from in the stand-in.

use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;
use std::cell::RefCell;

/// Path of the log file.
pub const WAL_PATH: &str = "/data/wal.log";

/// A minimal append-only write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    pending: RefCell<Vec<String>>,
}

impl Wal {
    /// Creates an empty log handle.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Buffers one record for the next commit.
    pub fn append(&self, record: impl Into<String>) {
        self.pending.borrow_mut().push(record.into());
    }

    /// Number of buffered records.
    pub fn pending_records(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Commits buffered records to the log file.
    ///
    /// Open failures are handled gracefully (the statement is rolled
    /// back), but a *write or fsync* failure after the log was opened
    /// aborts — the engine cannot tell how much of the record hit disk.
    ///
    /// # Panics
    ///
    /// Panics (deliberate abort) on write/fsync failure mid-commit.
    pub fn commit(&self, env: &LibcEnv, vfs: &Vfs) -> RunResult {
        let _f = env.frame("wal_commit");
        env.block(MODULE, 10);
        let records: Vec<String> = self.pending.borrow_mut().drain(..).collect();
        if records.is_empty() {
            return Ok(());
        }
        let mut existing = vfs.contents(WAL_PATH).unwrap_or_default();
        let fd = match vfs.create(env, WAL_PATH) {
            Ok(fd) => fd,
            Err(e) => {
                // Recovery: rollback, statement fails gracefully.
                env.block(MODULE, 11);
                return Err(RunError::Fault(e.errno()));
            }
        };
        for r in &records {
            existing.extend_from_slice(r.as_bytes());
            existing.push(b'\n');
        }
        if vfs.write(env, fd, &existing).is_err() {
            env.block(MODULE, 12);
            panic!("abort: WAL write failed mid-commit, cannot guarantee durability");
        }
        if vfs.fsync(env, fd).is_err() {
            env.block(MODULE, 13);
            panic!("abort: WAL fsync failed, log may be torn");
        }
        if let Err(e) = vfs.close(env, fd) {
            // A close failure after successful fsync is survivable.
            env.block(MODULE, 14);
            return Err(RunError::Fault(e.errno()));
        }
        env.block(MODULE, 15);
        Ok(())
    }

    /// Replays the log after a restart, returning the recovered records.
    pub fn recover(&self, env: &LibcEnv, vfs: &Vfs) -> Result<Vec<String>, RunError> {
        let _f = env.frame("wal_recover");
        env.block(MODULE, 16);
        if !vfs.file_exists(WAL_PATH) {
            return Ok(Vec::new());
        }
        let data = vfs.read_all(env, WAL_PATH).map_err(|e| {
            env.block(MODULE, 17); // Recovery: unreadable log diagnostic.
            RunError::Fault(e.errno())
        })?;
        Ok(String::from_utf8_lossy(&data)
            .lines()
            .map(str::to_owned)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_dir("/data");
        vfs
    }

    #[test]
    fn commit_then_recover() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let wal = Wal::new();
        wal.append("insert t 1");
        wal.append("insert t 2");
        wal.commit(&env, &vfs).unwrap();
        assert_eq!(wal.pending_records(), 0);
        let rec = wal.recover(&env, &vfs).unwrap();
        assert_eq!(rec, vec!["insert t 1", "insert t 2"]);
    }

    #[test]
    fn empty_commit_is_free() {
        let env = LibcEnv::fault_free();
        let wal = Wal::new();
        wal.commit(&env, &fixture()).unwrap();
        assert_eq!(env.call_count(Func::Open), 0);
    }

    #[test]
    fn open_fault_rolls_back_gracefully() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EMFILE));
        let wal = Wal::new();
        wal.append("x");
        assert!(wal.commit(&env, &fixture()).is_err());
    }

    #[test]
    #[should_panic(expected = "WAL write failed")]
    fn write_fault_aborts() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        let wal = Wal::new();
        wal.append("x");
        let _ = wal.commit(&env, &fixture());
    }

    #[test]
    #[should_panic(expected = "fsync failed")]
    fn fsync_fault_aborts() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fsync, 1, Errno::EIO));
        let wal = Wal::new();
        wal.append("x");
        let _ = wal.commit(&env, &fixture());
    }

    #[test]
    fn recover_with_no_log_is_empty() {
        let env = LibcEnv::fault_free();
        let wal = Wal::new();
        assert!(wal.recover(&env, &fixture()).unwrap().is_empty());
    }

    #[test]
    fn recover_read_fault_is_graceful() {
        let vfs = fixture();
        vfs.seed_file(WAL_PATH, b"a\nb\n");
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let wal = Wal::new();
        assert!(wal.recover(&env, &vfs).is_err());
    }
}
