//! The minidb test suite: 1,147 parameterized tests (`Xtest` of `Φ_MySQL`).
//!
//! MySQL's suite has over a thousand tests, many of which are parameter
//! variations of shared workloads; we reproduce that shape with 24 base
//! workloads fanned out over a scale parameter. Nearby test ids share a
//! base workload family, which is what gives the `Xtest` axis the locality
//! that AFEX's sensitivity mechanism detects (§7.3 observes `Xtest`
//! sensitivity converging to 0.4 for MySQL).

use super::engine::MiniDb;
use super::MODULE;
use crate::harness::{RunError, RunResult, Target};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Number of base workloads.
pub const BASE_WORKLOADS: usize = 24;

/// Suite size: the `Xtest = (1, ..., 1147)` axis of §7.
pub const NUM_TESTS: usize = 1147;

/// The minidb system under test.
#[derive(Debug, Default)]
pub struct MiniDbTarget;

impl MiniDbTarget {
    /// Creates the target.
    pub fn new() -> Self {
        MiniDbTarget
    }

    /// Decomposes a test id into (base workload, scale parameter).
    ///
    /// Consecutive ids cycle through scales *within* a base family:
    /// ids `base*48 .. base*48+47` all run workload `base`, so the test
    /// axis is locally homogeneous.
    pub fn decompose(test_id: usize) -> (usize, usize) {
        let family = test_id / 48; // 0..=23 (last family is short).
        let scale = test_id % 48;
        (family.min(BASE_WORKLOADS - 1), scale)
    }
}

fn check(cond: bool, what: &str) -> RunResult {
    if cond {
        Ok(())
    } else {
        Err(RunError::Check(format!("assertion failed: {what}")))
    }
}

impl Target for MiniDbTarget {
    fn name(&self) -> &str {
        "minidb"
    }

    fn num_tests(&self) -> usize {
        NUM_TESTS
    }

    fn total_blocks(&self) -> usize {
        super::TOTAL_BLOCKS
    }

    fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult {
        let (base, scale) = Self::decompose(test_id);
        let vfs = Vfs::new();
        MiniDb::install(&vfs);
        let db = MiniDb::start(env, &vfs)?;
        env.block(MODULE, 50 + base as u32);
        let n = 1 + scale % 6; // Row-count parameter, 1..=6.
        match base {
            // Table creation families.
            0 => {
                db.create_table(env, &vfs, "t0")?;
                check(vfs.file_exists("/data/t0.frm"), "frm created")
            }
            1 => {
                db.create_table(env, &vfs, "a")?;
                db.create_table(env, &vfs, "b")?;
                check(vfs.file_exists("/data/b.MYI"), "second table created")
            }
            2 => {
                for i in 0..n {
                    db.create_table(env, &vfs, &format!("t{i}"))?;
                }
                Ok(())
            }
            // Insert families.
            3..=5 => {
                db.create_table(env, &vfs, "t")?;
                for i in 0..(n as u64 * (base as u64 - 2)) {
                    db.insert(env, &vfs, "t", i, "v")?;
                }
                check(
                    db.row_count("t") == Some(n * (base - 2)),
                    "all rows inserted",
                )
            }
            // Select families.
            6 | 7 => {
                db.create_table(env, &vfs, "t")?;
                db.insert(env, &vfs, "t", 1, "one")?;
                let got = db.select(env, &vfs, "t", if base == 6 { 1 } else { 99 })?;
                check(got.is_some() == (base == 6), "select result")
            }
            // Delete families.
            8 | 9 => {
                db.create_table(env, &vfs, "t")?;
                for i in 0..n as u64 {
                    db.insert(env, &vfs, "t", i, "v")?;
                }
                for i in 0..n as u64 {
                    db.delete(env, &vfs, "t", i)?;
                }
                check(db.row_count("t") == Some(0), "all rows deleted")
            }
            // Update-like (overwrite) families.
            10 | 11 => {
                db.create_table(env, &vfs, "t")?;
                db.insert(env, &vfs, "t", 1, "old")?;
                db.insert(env, &vfs, "t", 1, "new")?;
                check(
                    db.select(env, &vfs, "t", 1)?.as_deref() == Some("new"),
                    "overwrite visible",
                )
            }
            // Checkpoint families.
            12 | 13 => {
                db.create_table(env, &vfs, "t")?;
                for i in 0..n as u64 {
                    db.insert(env, &vfs, "t", i, "v")?;
                }
                db.checkpoint(env, &vfs)?;
                check(vfs.file_exists("/data/t.MYD"), "checkpoint wrote MYD")
            }
            // Restart-recovery families.
            14 | 15 => {
                db.create_table(env, &vfs, "t")?;
                db.insert(env, &vfs, "t", 1, "durable")?;
                // Simulated restart: a second engine replays the WAL.
                let db2 = MiniDb::start(env, &vfs)?;
                drop(db2);
                check(vfs.file_exists("/data/wal.log"), "wal survives restart")
            }
            // Error-path families: statements against missing tables.
            16 | 17 => {
                let r = db.insert(env, &vfs, "ghost", 1, "x");
                check(r.is_err(), "unknown table rejected")
            }
            // Mixed workloads.
            18..=20 => {
                db.create_table(env, &vfs, "m")?;
                for i in 0..n as u64 {
                    db.insert(env, &vfs, "m", i, "x")?;
                }
                db.delete(env, &vfs, "m", 0)?;
                db.checkpoint(env, &vfs)?;
                let got = db.select(env, &vfs, "m", (n as u64).saturating_sub(1))?;
                check(got.is_some() || n == 1, "mixed workload state")
            }
            // Big-value families (more write traffic per insert).
            21 | 22 => {
                db.create_table(env, &vfs, "big")?;
                let v = "x".repeat(64 * n);
                db.insert(env, &vfs, "big", 1, &v)?;
                check(db.row_count("big") == Some(1), "big row inserted")
            }
            // Full lifecycle.
            _ => {
                db.create_table(env, &vfs, "t")?;
                db.insert(env, &vfs, "t", 1, "a")?;
                db.checkpoint(env, &vfs)?;
                db.delete(env, &vfs, "t", 1)?;
                check(db.row_count("t") == Some(0), "lifecycle complete")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_test;
    use afex_inject::{Errno, FaultPlan, Func, TestStatus};

    #[test]
    fn suite_is_1147_tests() {
        assert_eq!(MiniDbTarget::new().num_tests(), 1147);
    }

    #[test]
    fn decompose_is_locally_homogeneous() {
        let (b0, _) = MiniDbTarget::decompose(0);
        let (b1, _) = MiniDbTarget::decompose(47);
        assert_eq!(b0, b1);
        let (b2, _) = MiniDbTarget::decompose(48);
        assert_ne!(b0, b2);
        // Tail ids clamp to the last family.
        let (b, _) = MiniDbTarget::decompose(1146);
        assert_eq!(b, BASE_WORKLOADS - 1);
    }

    #[test]
    fn sampled_tests_pass_fault_free() {
        let t = MiniDbTarget::new();
        // One per family (ids 0, 48, 96, ...).
        for base in 0..BASE_WORKLOADS {
            let id = base * 48;
            let o = run_test(&t, id.min(NUM_TESTS - 1), &FaultPlan::none());
            assert_eq!(o.status, TestStatus::Passed, "family {base} (test {id})");
        }
    }

    #[test]
    fn close_fault_in_mi_create_crashes() {
        // Test 0 boots (closes: my.cnf=1, errmsg=2) then creates a table;
        // the table's MYD close is the 5th close overall.
        let t = MiniDbTarget::new();
        let o = run_test(&t, 0, &FaultPlan::single(Func::Close, 5, Errno::EIO));
        assert!(o.status.is_crash(), "got {:?}", o.status);
        if let TestStatus::Crashed(msg) = &o.status {
            assert!(msg.contains("double unlock"), "{msg}");
        }
    }

    #[test]
    fn errmsg_read_fault_crashes_every_family() {
        let t = MiniDbTarget::new();
        for id in [0usize, 100, 500, 1100] {
            // my.cnf consumes reads #1–2; the errmsg.sys read is #3.
            let o = run_test(&t, id, &FaultPlan::single(Func::Read, 3, Errno::EIO));
            assert!(o.status.is_crash(), "test {id}: {:?}", o.status);
        }
    }

    #[test]
    fn wal_write_fault_aborts_insert_families() {
        // Insert-family test: boot writes nothing, the first WAL commit's
        // write aborts. mi_create writes headers first (writes 1-3), so
        // the WAL write is #4.
        let t = MiniDbTarget::new();
        let o = run_test(
            &t,
            3 * 48,
            &FaultPlan::single(Func::Write, 4, Errno::ENOSPC),
        );
        assert!(o.status.is_crash(), "got {:?}", o.status);
    }

    #[test]
    fn config_fault_is_tolerated() {
        let t = MiniDbTarget::new();
        let o = run_test(&t, 0, &FaultPlan::single(Func::Open, 1, Errno::EACCES));
        assert_eq!(o.status, TestStatus::Passed);
    }
}
