//! The minidb server engine: startup, SQL-ish statement execution.

use super::errmsg::ErrMsg;
use super::lock::ThrLock;
use super::table::{mi_create, Table};
use super::wal::{Wal, WalMode};
use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{Errno, Func, LibcEnv};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// The minidb server instance.
///
/// Startup mirrors `mysqld` initialization: read the configuration file
/// (missing/unreadable config falls back to defaults — graceful), allocate
/// session buffers (checked), load the error-message catalog (carrying bug
/// #25097), emit the greeting (which *uses* the catalog — where the bug
/// fires), then replay the WAL.
#[derive(Debug)]
pub struct MiniDb {
    lock: ThrLock,
    errmsg: ErrMsg,
    wal: Wal,
    tables: RefCell<BTreeMap<String, Table>>,
}

impl MiniDb {
    /// Installs server data files into a fresh VFS.
    pub fn install(vfs: &Vfs) {
        vfs.seed_dir("/data");
        vfs.seed_dir("/etc");
        vfs.seed_file("/etc/my.cnf", b"buffer_pool=16\nlog=on\n");
        ErrMsg::install(vfs);
    }

    /// Boots the server.
    ///
    /// # Panics
    ///
    /// Panics when the errmsg catalog read failed (bug #25097 fires at the
    /// greeting) — the crash AFEX rediscovers in §7.1.
    pub fn start(env: &LibcEnv, vfs: &Vfs) -> Result<Self, RunError> {
        Self::start_with(env, vfs, WalMode::Append)
    }

    /// Boots the server with an explicit WAL commit mode (the `Rewrite`
    /// specimen exists for the crash-recovery oracle).
    pub fn start_with(env: &LibcEnv, vfs: &Vfs, mode: WalMode) -> Result<Self, RunError> {
        let _f = env.frame("mysqld_main");
        env.block(MODULE, 30);
        // Configuration: unreadable config is survivable (defaults).
        match vfs.read_all(env, "/etc/my.cnf") {
            Ok(_) => env.block(MODULE, 31),
            Err(_) => env.block(MODULE, 32), // Recovery: defaults.
        }
        // Session and buffer-pool allocations: checked, graceful.
        for _ in 0..2 {
            if env.call(Func::Malloc).failed() {
                env.block(MODULE, 33); // Recovery: OOM diagnostic.
                return Err(RunError::Fault(Errno::ENOMEM));
            }
        }
        let db = MiniDb {
            lock: ThrLock::new(),
            errmsg: ErrMsg::new(),
            wal: Wal::with_mode(mode),
            tables: RefCell::new(BTreeMap::new()),
        };
        // Load the message catalog (the bug is inside `load`).
        db.errmsg.load(env, vfs);
        // The greeting formats a catalog message: first catalog use.
        env.block(MODULE, 34);
        let _greeting = db.errmsg.message(env, 0);
        // WAL replay: rebuild table state from the recovered records.
        let recovered = db.wal.recover(env, vfs)?;
        if !recovered.is_empty() {
            env.block(MODULE, 35);
            db.apply_wal(env, &recovered);
        }
        Ok(db)
    }

    /// Applies recovered WAL records in order, reconstructing tables and
    /// rows. Records the parser does not understand are skipped (a real
    /// engine logs and continues), which keeps replay idempotent over
    /// partially-recovered logs.
    fn apply_wal(&self, env: &LibcEnv, records: &[String]) {
        let mut tables = self.tables.borrow_mut();
        for rec in records {
            if let Some(rest) = rec.strip_prefix("insert ") {
                let mut parts = rest.splitn(3, ' ');
                let (Some(name), Some(key), Some(value)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    continue;
                };
                let Ok(key) = key.parse::<u64>() else { continue };
                tables
                    .entry(name.to_owned())
                    .or_insert_with(|| Table::recovered(name))
                    .insert(env, key, value);
            } else if let Some(rest) = rec.strip_prefix("delete ") {
                let mut parts = rest.splitn(2, ' ');
                let (Some(name), Some(key)) = (parts.next(), parts.next()) else {
                    continue;
                };
                let Ok(key) = key.parse::<u64>() else { continue };
                if let Some(t) = tables.get(name) {
                    t.delete(env, key);
                }
            }
        }
    }

    /// Creates a table (the `mi_create` path with the Fig. 6 bug).
    pub fn create_table(&self, env: &LibcEnv, vfs: &Vfs, name: &str) -> RunResult {
        let _f = env.frame("sql_create_table");
        env.block(MODULE, 36);
        let table = mi_create(env, vfs, &self.lock, name)?;
        self.tables.borrow_mut().insert(name.to_owned(), table);
        Ok(())
    }

    /// Inserts a row: WAL first, then the in-memory table.
    pub fn insert(
        &self,
        env: &LibcEnv,
        vfs: &Vfs,
        table: &str,
        key: u64,
        value: &str,
    ) -> RunResult {
        let _f = env.frame("sql_insert");
        env.block(MODULE, 37);
        let tables = self.tables.borrow();
        let Some(t) = tables.get(table) else {
            env.block(MODULE, 38); // Error path: unknown table message.
            let _msg = self.errmsg.message(env, 1);
            return Err(RunError::Check(format!("unknown table {table}")));
        };
        self.wal.append(format!("insert {table} {key} {value}"));
        self.wal.commit(env, vfs)?;
        t.insert(env, key, value);
        Ok(())
    }

    /// Reads a row.
    pub fn select(
        &self,
        env: &LibcEnv,
        _vfs: &Vfs,
        table: &str,
        key: u64,
    ) -> Result<Option<String>, RunError> {
        let _f = env.frame("sql_select");
        env.block(MODULE, 39);
        let tables = self.tables.borrow();
        let Some(t) = tables.get(table) else {
            env.block(MODULE, 38);
            let _msg = self.errmsg.message(env, 1);
            return Err(RunError::Check(format!("unknown table {table}")));
        };
        Ok(t.get(env, key))
    }

    /// Deletes a row, returning whether it existed.
    pub fn delete(
        &self,
        env: &LibcEnv,
        vfs: &Vfs,
        table: &str,
        key: u64,
    ) -> Result<bool, RunError> {
        let _f = env.frame("sql_delete");
        env.block(MODULE, 40);
        let tables = self.tables.borrow();
        let Some(t) = tables.get(table) else {
            env.block(MODULE, 38);
            let _msg = self.errmsg.message(env, 1);
            return Err(RunError::Check(format!("unknown table {table}")));
        };
        self.wal.append(format!("delete {table} {key}"));
        self.wal.commit(env, vfs)?;
        Ok(t.delete(env, key))
    }

    /// Checkpoints every table to its MYD file.
    pub fn checkpoint(&self, env: &LibcEnv, vfs: &Vfs) -> RunResult {
        let _f = env.frame("sql_checkpoint");
        env.block(MODULE, 41);
        for t in self.tables.borrow().values() {
            t.flush(env, vfs)?;
        }
        Ok(())
    }

    /// Row count of a table (assertion helper; no libc calls).
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.borrow().get(table).map(Table::len)
    }

    /// Full contents of every table (assertion helper for the recovery
    /// oracle; no libc calls).
    pub fn dump(&self) -> BTreeMap<String, BTreeMap<u64, String>> {
        self.tables
            .borrow()
            .iter()
            .map(|(name, t)| (name.clone(), t.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    fn booted() -> (LibcEnv, Vfs, MiniDb) {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        MiniDb::install(&vfs);
        let db = MiniDb::start(&env, &vfs).unwrap();
        (env, vfs, db)
    }

    #[test]
    fn boot_and_basic_crud() {
        let (env, vfs, db) = booted();
        db.create_table(&env, &vfs, "t").unwrap();
        db.insert(&env, &vfs, "t", 1, "a").unwrap();
        db.insert(&env, &vfs, "t", 2, "b").unwrap();
        assert_eq!(db.select(&env, &vfs, "t", 1).unwrap().as_deref(), Some("a"));
        assert!(db.delete(&env, &vfs, "t", 1).unwrap());
        assert_eq!(db.row_count("t"), Some(1));
    }

    #[test]
    fn unreadable_config_uses_defaults() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EACCES));
        let vfs = Vfs::new();
        MiniDb::install(&vfs);
        assert!(MiniDb::start(&env, &vfs).is_ok());
    }

    #[test]
    fn startup_oom_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        let vfs = Vfs::new();
        MiniDb::install(&vfs);
        assert!(matches!(
            MiniDb::start(&env, &vfs),
            Err(RunError::Fault(Errno::ENOMEM))
        ));
    }

    #[test]
    fn errmsg_read_fault_crashes_startup() {
        // my.cnf consumes read #1 (data) + #2 (EOF); errmsg.sys data is #3.
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 3, Errno::EIO));
        let vfs = Vfs::new();
        MiniDb::install(&vfs);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| MiniDb::start(&env, &vfs)));
        assert!(r.is_err(), "bug #25097 must crash the greeting");
    }

    #[test]
    fn unknown_table_is_reported_not_crashed() {
        let (env, vfs, db) = booted();
        assert!(db.insert(&env, &vfs, "ghost", 1, "x").is_err());
    }

    #[test]
    fn inserts_are_durable_via_wal() {
        let (env, vfs, db) = booted();
        db.create_table(&env, &vfs, "t").unwrap();
        db.insert(&env, &vfs, "t", 5, "five").unwrap();
        let wal = vfs.contents(super::super::wal::WAL_PATH).unwrap();
        assert!(String::from_utf8_lossy(&wal).contains("insert t 5 five"));
    }

    #[test]
    fn restart_replays_committed_rows() {
        let (env, vfs, db) = booted();
        db.create_table(&env, &vfs, "t").unwrap();
        db.insert(&env, &vfs, "t", 1, "one").unwrap();
        db.insert(&env, &vfs, "t", 2, "two").unwrap();
        db.delete(&env, &vfs, "t", 1).unwrap();
        drop(db);
        vfs.crash();
        let db2 = MiniDb::start(&env, &vfs).unwrap();
        assert_eq!(db2.select(&env, &vfs, "t", 2).unwrap().as_deref(), Some("two"));
        assert_eq!(db2.select(&env, &vfs, "t", 1).unwrap(), None);
        assert_eq!(db2.row_count("t"), Some(1));
    }

    #[test]
    fn replay_is_idempotent_across_repeated_crashes() {
        let (env, vfs, db) = booted();
        db.create_table(&env, &vfs, "t").unwrap();
        db.insert(&env, &vfs, "t", 7, "seven").unwrap();
        drop(db);
        vfs.crash();
        let first = MiniDb::start(&env, &vfs).unwrap().dump();
        vfs.crash();
        let second = MiniDb::start(&env, &vfs).unwrap().dump();
        assert_eq!(first, second);
        assert_eq!(first["t"][&7], "seven");
    }
}
