//! The `errmsg.sys` message catalog, with MySQL bug #25097 re-seeded.
//!
//! The original bug: MySQL checks whether the read from `errmsg.sys`
//! succeeded and "correctly logs any encountered error if the read fails.
//! However, after completing this recovery, regardless of whether the read
//! succeeded or not, MySQL proceeds to use a data structure that should
//! have been initialized by that read" (§7.1). [`ErrMsg::load`] reproduces
//! that shape: the error is logged, the load is marked complete, and the
//! entry table stays empty — the crash fires at first use.

use super::MODULE;
use crate::vfs::Vfs;
use afex_inject::LibcEnv;
use std::cell::RefCell;

/// Path of the message catalog file.
pub const ERRMSG_PATH: &str = "/share/errmsg.sys";

/// The server's error-message catalog.
#[derive(Debug, Default)]
pub struct ErrMsg {
    state: RefCell<State>,
}

#[derive(Debug, Default)]
struct State {
    entries: Vec<String>,
    loaded: bool,
}

impl ErrMsg {
    /// Creates an unloaded catalog.
    pub fn new() -> Self {
        ErrMsg::default()
    }

    /// Seeds the catalog file into a VFS (server installation step).
    pub fn install(vfs: &Vfs) {
        vfs.seed_dir("/share");
        vfs.seed_file(
            ERRMSG_PATH,
            b"access denied\nunknown table\nduplicate key\ndisk full\nlock wait timeout\n",
        );
    }

    /// Loads the catalog from `errmsg.sys`.
    ///
    /// BUG #25097 (intentional): on a failed read the error is logged and
    /// the function returns "successfully" with `loaded = true` but no
    /// entries; the crash is deferred to the first [`ErrMsg::message`].
    pub fn load(&self, env: &LibcEnv, vfs: &Vfs) {
        let _f = env.frame("init_errmessage");
        env.block(MODULE, 0);
        let mut st = self.state.borrow_mut();
        match vfs.read_all(env, ERRMSG_PATH) {
            Ok(data) => {
                env.block(MODULE, 1);
                st.entries = String::from_utf8_lossy(&data)
                    .lines()
                    .map(str::to_owned)
                    .collect();
            }
            Err(_e) => {
                // Recovery: log the failed read — this part is correct.
                env.block(MODULE, 2);
                // ... but the entries stay uninitialized while the catalog
                // is still marked loaded (the re-manifested bug).
            }
        }
        st.loaded = true;
    }

    /// Whether [`ErrMsg::load`] has run.
    pub fn is_loaded(&self) -> bool {
        self.state.borrow().loaded
    }

    /// Fetches message `code`.
    ///
    /// # Panics
    ///
    /// Panics (the bug #25097 crash) when the catalog was "loaded" but the
    /// backing read had failed, or when `load` was never called.
    pub fn message(&self, env: &LibcEnv, code: usize) -> String {
        let _f = env.frame("errmsg_lookup");
        env.block(MODULE, 3);
        let st = self.state.borrow();
        if st.entries.is_empty() {
            panic!("segfault: errmsg catalog used but not initialized (bug #25097)");
        }
        st.entries[code % st.entries.len()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    #[test]
    fn load_and_lookup() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        ErrMsg::install(&vfs);
        let em = ErrMsg::new();
        em.load(&env, &vfs);
        assert!(em.is_loaded());
        assert_eq!(em.message(&env, 0), "access denied");
        assert_eq!(em.message(&env, 1), "unknown table");
    }

    #[test]
    fn failed_read_is_logged_but_marked_loaded() {
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let vfs = Vfs::new();
        ErrMsg::install(&vfs);
        let em = ErrMsg::new();
        em.load(&env, &vfs);
        // The recovery block ran and the catalog claims to be loaded.
        assert!(env.coverage().covers(MODULE, 2));
        assert!(em.is_loaded());
    }

    #[test]
    #[should_panic(expected = "bug #25097")]
    fn use_after_failed_load_crashes() {
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let vfs = Vfs::new();
        ErrMsg::install(&vfs);
        let em = ErrMsg::new();
        em.load(&env, &vfs);
        let _ = em.message(&env, 0);
    }

    #[test]
    fn open_failure_takes_same_buggy_path() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::ENOENT));
        let vfs = Vfs::new();
        ErrMsg::install(&vfs);
        let em = ErrMsg::new();
        em.load(&env, &vfs);
        assert!(em.is_loaded());
    }
}
