//! The MySQL 5.1.44 stand-in: a miniature storage engine.
//!
//! Components mirror the MySQL subsystems that §7.1's findings live in:
//!
//! - [`lock`] — the `THR_LOCK_myisam` global lock, modelled with a depth
//!   counter that aborts on unlock-without-lock (what pthreads does with
//!   error-checking mutexes, and what crashed MySQL in bug #53268).
//! - [`errmsg`] — the `errmsg.sys` message catalog, with bug #25097's
//!   re-manifestation: a failed read is logged correctly, but the catalog
//!   is used afterwards regardless.
//! - [`wal`] — a write-ahead log with an abort-on-corruption policy, the
//!   source of the many "crashes" that are really deliberate aborts (§7.1:
//!   "many of them result from MySQL aborting the current operation").
//! - [`table`] — MyISAM-style table creation (`mi_create`) carrying the
//!   double-unlock recovery bug of Fig. 6, plus row storage.
//! - [`engine`] — the server tying it together.
//! - [`suite`] — a 1,147-test suite (24 base workloads × parameters),
//!   giving the `Xtest = (1, ..., 1147)` axis of `Φ_MySQL`.

pub mod engine;
pub mod errmsg;
pub mod lock;
pub mod suite;
pub mod table;
pub mod wal;

pub use engine::MiniDb;
pub use suite::MiniDbTarget;

/// The module name under which minidb blocks are recorded.
pub const MODULE: &str = "minidb";

/// Total declared basic blocks in minidb.
pub const TOTAL_BLOCKS: usize = 96;
