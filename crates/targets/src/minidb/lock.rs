//! The `THR_LOCK_myisam` global lock model.
//!
//! A depth counter stands in for a pthreads mutex: locking increments,
//! unlocking decrements, and unlocking a free lock aborts the process —
//! which is exactly how MySQL bug #53268 manifests when `mi_create`'s
//! recovery code unlocks a mutex its caller already released.

use std::cell::Cell;

/// A crash-on-misuse lock.
#[derive(Debug, Default)]
pub struct ThrLock {
    depth: Cell<u32>,
}

impl ThrLock {
    /// Creates an unlocked lock.
    pub fn new() -> Self {
        ThrLock::default()
    }

    /// Acquires the lock (re-entrant for simplicity; MySQL's usage here is
    /// effectively single-threaded per statement).
    pub fn lock(&self) {
        self.depth.set(self.depth.get() + 1);
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics — modelling the `pthread_mutex_unlock` abort — if the lock
    /// is not held. This panic *is* the bug #53268 crash signature.
    pub fn unlock(&self) {
        let d = self.depth.get();
        if d == 0 {
            panic!("fatal: double unlock of THR_LOCK_myisam (mi_create.c:837)");
        }
        self.depth.set(d - 1);
    }

    /// Whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.depth.get() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_unlock_balance() {
        let l = ThrLock::new();
        assert!(!l.is_locked());
        l.lock();
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
    }

    #[test]
    fn reentrant_depth() {
        let l = ThrLock::new();
        l.lock();
        l.lock();
        l.unlock();
        assert!(l.is_locked());
        l.unlock();
        assert!(!l.is_locked());
    }

    #[test]
    #[should_panic(expected = "double unlock")]
    fn double_unlock_aborts() {
        let l = ThrLock::new();
        l.lock();
        l.unlock();
        l.unlock();
    }
}
