//! MyISAM-style tables, with the Fig. 6 double-unlock bug in `mi_create`.
//!
//! The original `mi_create.c` performs a series of file operations under
//! `THR_LOCK_myisam`; every failure jumps to a single recovery label that
//! unlocks the mutex. The bug: the `my_close` call happens *after* the
//! function has already unlocked (line 830), so if it is `my_close` that
//! fails, the recovery path at line 837 unlocks a second time and the
//! process aborts. [`mi_create`] reproduces that control flow faithfully.

use super::lock::ThrLock;
use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// In-memory table rows (the MYD file holds a rendered copy).
#[derive(Debug, Default)]
pub struct Table {
    rows: RefCell<BTreeMap<u64, String>>,
    name: String,
}

/// Creates the on-disk files of a new table.
///
/// Mirrors `mi_create`: lock, create the `.frm`, `.MYD` and `.MYI` files,
/// write headers, unlock, close — with a single recovery label. Any file
/// operation failing before the unlock takes the correct recovery path;
/// a failing *close* (after the unlock) takes the same label and double-
/// unlocks (bug #53268).
///
/// # Panics
///
/// Panics via [`ThrLock::unlock`] when the close call fails — the seeded
/// crash this module exists to carry.
pub fn mi_create(env: &LibcEnv, vfs: &Vfs, lock: &ThrLock, name: &str) -> Result<Table, RunError> {
    let _f = env.frame("mi_create");
    env.block(MODULE, 20);
    lock.lock();

    // A tiny goto-style recovery label, as in the C original.
    let err = |env: &LibcEnv, lock: &ThrLock, e: afex_inject::Errno| -> RunError {
        // mi_create.c:836 `err:` — cleanup, unlock, propagate.
        env.block(MODULE, 21);
        lock.unlock(); // mi_create.c:837 — double-unlocks if already freed.
        RunError::Fault(e)
    };

    let frm = format!("/data/{name}.frm");
    let myd = format!("/data/{name}.MYD");
    let myi = format!("/data/{name}.MYI");

    // File creations and header writes, all before the unlock: their
    // failures take the *correct* single-unlock recovery.
    let fd_frm = match vfs.create(env, &frm) {
        Ok(fd) => fd,
        Err(e) => return Err(err(env, lock, e.errno())),
    };
    if let Err(e) = vfs.write(env, fd_frm, b"frm-header-v1") {
        let _ = vfs.close(env, fd_frm);
        return Err(err(env, lock, e.errno()));
    }
    if let Err(e) = vfs.close(env, fd_frm) {
        return Err(err(env, lock, e.errno()));
    }
    let fd_myd = match vfs.create(env, &myd) {
        Ok(fd) => fd,
        Err(e) => return Err(err(env, lock, e.errno())),
    };
    if let Err(e) = vfs.write(env, fd_myd, b"myd-header-v1") {
        let _ = vfs.close(env, fd_myd);
        return Err(err(env, lock, e.errno()));
    }
    let fd_myi = match vfs.create(env, &myi) {
        Ok(fd) => fd,
        Err(e) => {
            let _ = vfs.close(env, fd_myd);
            return Err(err(env, lock, e.errno()));
        }
    };
    if let Err(e) = vfs.write(env, fd_myi, b"myi-header-v1") {
        let _ = vfs.close(env, fd_myd);
        let _ = vfs.close(env, fd_myi);
        return Err(err(env, lock, e.errno()));
    }
    if let Err(e) = vfs.close(env, fd_myi) {
        let _ = vfs.close(env, fd_myd);
        return Err(err(env, lock, e.errno()));
    }

    // mi_create.c:830 — unlock before the last close.
    env.block(MODULE, 22);
    lock.unlock();

    // mi_create.c:831 — `if (my_close(file, MYF(0))) goto err;`
    // THE BUG: this jump reaches the recovery label after the unlock.
    if let Err(e) = vfs.close(env, fd_myd) {
        return Err(err(env, lock, e.errno())); // Double unlock → abort.
    }

    env.block(MODULE, 23);
    Ok(Table {
        rows: RefCell::new(BTreeMap::new()),
        name: name.to_owned(),
    })
}

impl Table {
    /// Reconstructs a table handle during WAL replay: no on-disk files
    /// are touched (they either already exist or will be recreated by the
    /// next checkpoint); the recovered rows arrive through ordinary
    /// inserts.
    pub fn recovered(name: &str) -> Table {
        Table {
            rows: RefCell::new(BTreeMap::new()),
            name: name.to_owned(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of all rows (assertion helper; no libc calls).
    pub fn snapshot(&self) -> BTreeMap<u64, String> {
        self.rows.borrow().clone()
    }

    /// Inserts a row (in-memory; durability comes from the WAL).
    pub fn insert(&self, env: &LibcEnv, key: u64, value: impl Into<String>) {
        env.block(MODULE, 24);
        self.rows.borrow_mut().insert(key, value.into());
    }

    /// Reads a row.
    pub fn get(&self, env: &LibcEnv, key: u64) -> Option<String> {
        env.block(MODULE, 25);
        self.rows.borrow().get(&key).cloned()
    }

    /// Deletes a row, reporting whether it existed.
    pub fn delete(&self, env: &LibcEnv, key: u64) -> bool {
        env.block(MODULE, 26);
        self.rows.borrow_mut().remove(&key).is_some()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.borrow().len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes rows to the MYD file (checkpoint), atomically: write a
    /// temporary file, fsync it, then rename it over the MYD — so a crash
    /// mid-checkpoint leaves either the old checkpoint or the new one,
    /// never a torn mix (and a torn *rename* leaves the old durable copy).
    pub fn flush(&self, env: &LibcEnv, vfs: &Vfs) -> RunResult {
        let _f = env.frame("mi_flush");
        env.block(MODULE, 27);
        let rendered: String = self
            .rows
            .borrow()
            .iter()
            .map(|(k, v)| format!("{k}={v}\n"))
            .collect();
        let myd = format!("/data/{}.MYD", self.name);
        let tmp = format!("{myd}.tmp");
        let result = (|| {
            let fd = vfs.create(env, &tmp)?;
            if let Err(e) = vfs.write(env, fd, rendered.as_bytes()) {
                let _ = vfs.close(env, fd);
                return Err(e);
            }
            if let Err(e) = vfs.fsync(env, fd) {
                let _ = vfs.close(env, fd);
                return Err(e);
            }
            vfs.close(env, fd)?;
            vfs.rename(env, &tmp, &myd)
        })();
        result.map_err(|e| {
            env.block(MODULE, 28); // Recovery: flush diagnostic.
            RunError::Fault(e.errno())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan, Func};

    fn fixture() -> Vfs {
        let vfs = Vfs::new();
        vfs.seed_dir("/data");
        vfs
    }

    #[test]
    fn create_makes_three_files() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let lock = ThrLock::new();
        let t = mi_create(&env, &vfs, &lock, "users").unwrap();
        assert_eq!(t.name(), "users");
        assert!(vfs.file_exists("/data/users.frm"));
        assert!(vfs.file_exists("/data/users.MYD"));
        assert!(vfs.file_exists("/data/users.MYI"));
        assert!(!lock.is_locked());
    }

    #[test]
    fn early_failures_recover_correctly() {
        // Failing the first create (frm) takes the single-unlock path.
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::ENOSPC));
        let vfs = fixture();
        let lock = ThrLock::new();
        let r = mi_create(&env, &vfs, &lock, "t");
        assert!(matches!(r, Err(RunError::Fault(Errno::ENOSPC))));
        assert!(!lock.is_locked(), "recovery must release the lock");
    }

    #[test]
    fn write_failures_recover_correctly() {
        for n in 1..=3u32 {
            let env = LibcEnv::new(FaultPlan::single(Func::Write, n, Errno::EIO));
            let lock = ThrLock::new();
            let r = mi_create(&env, &fixture(), &lock, "t");
            assert!(r.is_err(), "write #{n}");
            assert!(!lock.is_locked(), "write #{n} left the lock held");
        }
    }

    #[test]
    fn early_close_failures_recover_correctly() {
        // close #1 (frm) and #2 (myi) are before the unlock.
        for n in 1..=2u32 {
            let env = LibcEnv::new(FaultPlan::single(Func::Close, n, Errno::EIO));
            let lock = ThrLock::new();
            let r = mi_create(&env, &fixture(), &lock, "t");
            assert!(r.is_err(), "close #{n}");
            assert!(!lock.is_locked());
        }
    }

    #[test]
    #[should_panic(expected = "double unlock")]
    fn final_close_failure_double_unlocks() {
        // close #3 is the my_close at mi_create.c:831 — the seeded bug.
        let env = LibcEnv::new(FaultPlan::single(Func::Close, 3, Errno::EIO));
        let lock = ThrLock::new();
        let _ = mi_create(&env, &fixture(), &lock, "t");
    }

    #[test]
    fn row_operations() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let lock = ThrLock::new();
        let t = mi_create(&env, &vfs, &lock, "kv").unwrap();
        t.insert(&env, 1, "one");
        t.insert(&env, 2, "two");
        assert_eq!(t.get(&env, 1).as_deref(), Some("one"));
        assert!(t.delete(&env, 2));
        assert!(!t.delete(&env, 2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn flush_writes_myd() {
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let lock = ThrLock::new();
        let t = mi_create(&env, &vfs, &lock, "kv").unwrap();
        t.insert(&env, 7, "seven");
        t.flush(&env, &vfs).unwrap();
        let myd = vfs.contents("/data/kv.MYD").unwrap();
        assert_eq!(String::from_utf8_lossy(&myd), "7=seven\n");
        assert!(!vfs.file_exists("/data/kv.MYD.tmp"), "tmp renamed away");
    }

    #[test]
    fn failed_flush_keeps_the_old_checkpoint() {
        // The atomic tmp+fsync+rename flush: a write fault while writing
        // the new checkpoint must leave the previous MYD intact.
        let env = LibcEnv::fault_free();
        let vfs = fixture();
        let lock = ThrLock::new();
        let t = mi_create(&env, &vfs, &lock, "kv").unwrap();
        t.insert(&env, 1, "one");
        t.flush(&env, &vfs).unwrap();
        t.insert(&env, 2, "two");
        // Writes so far: 3 headers in mi_create + 1 flush = 4; fail #5.
        let env2 = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        assert!(t.flush(&env2, &vfs).is_err());
        let myd = vfs.contents("/data/kv.MYD").unwrap();
        assert_eq!(String::from_utf8_lossy(&myd), "1=one\n");
    }

    #[test]
    fn snapshot_and_recovered() {
        let env = LibcEnv::fault_free();
        let t = Table::recovered("r");
        assert_eq!(t.name(), "r");
        assert!(t.is_empty());
        t.insert(&env, 3, "three");
        assert_eq!(t.snapshot()[&3], "three");
    }
}
