//! The Apache httpd 2.3.8 stand-in: a miniature web server.
//!
//! Apache "has extensive checking code for error conditions like NULL
//! returns from malloc throughout its code base" (§7.1) — and so does this
//! stand-in — except for the one place the paper's Fig. 7 shows: module
//! registration `strdup`s the module's short name and writes a terminator
//! through the unchecked result (`config.c:578-579`). An out-of-memory
//! failure inside `strdup` therefore segfaults the server before its
//! error-logging recovery code can run.
//!
//! - [`config`] — configuration parsing (streams) + the Fig. 7 bug.
//! - [`modules`] — the module registry.
//! - [`request`] — connection handling (network calls) and dispatch.
//! - [`server`] — startup and the serving loop.
//! - [`suite`] — the 58-test suite (`Xtest` of `Φ_Apache`).

pub mod config;
pub mod modules;
pub mod request;
pub mod server;
pub mod suite;

pub use server::Httpd;
pub use suite::HttpdTarget;

/// The module name under which httpd blocks are recorded.
pub const MODULE: &str = "httpd";

/// Total declared basic blocks in httpd.
pub const TOTAL_BLOCKS: usize = 64;
