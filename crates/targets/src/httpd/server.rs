//! Server startup and the serving loop.

use super::config;
use super::modules::ModuleRegistry;
use super::request::{serve_one, Response};
use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{CallResult, Func, LibcEnv};

/// A running httpd instance.
#[derive(Debug)]
pub struct Httpd {
    registry: ModuleRegistry,
}

impl Httpd {
    /// Installs the default site into a VFS.
    pub fn install(vfs: &Vfs) {
        config::install(vfs);
    }

    /// Boots the server: parse config (where the Fig. 7 bug lives), then
    /// bind/listen the accept socket.
    pub fn start(env: &LibcEnv, vfs: &Vfs) -> Result<Self, RunError> {
        let _f = env.frame("httpd_main");
        env.block(MODULE, 40);
        let registry = ModuleRegistry::new();
        config::parse(env, vfs, &registry)?;
        // socket / bind / listen, each checked with a clean-exit recovery.
        for (func, block) in [(Func::Socket, 41u32), (Func::Bind, 42), (Func::Listen, 43)] {
            if let CallResult::Fail(e) = env.call(func) {
                env.block(MODULE, block); // Recovery: startup diagnostic.
                return Err(RunError::Fault(e));
            }
        }
        env.block(MODULE, 44);
        Ok(Httpd { registry })
    }

    /// Serves one request for `path`.
    pub fn serve(&self, env: &LibcEnv, vfs: &Vfs, path: &str) -> Result<Response, RunError> {
        serve_one(env, vfs, &self.registry, path)
    }

    /// Graceful shutdown: flush logs.
    pub fn shutdown(&self, env: &LibcEnv) -> RunResult {
        let _f = env.frame("httpd_shutdown");
        env.block(MODULE, 45);
        if let CallResult::Fail(e) = env.call(Func::Fflush) {
            env.block(MODULE, 46); // Recovery: log-flush diagnostic.
            return Err(RunError::Fault(e));
        }
        Ok(())
    }

    /// The module registry (assertion access).
    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::{Errno, FaultPlan};

    #[test]
    fn boots_and_serves() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        Httpd::install(&vfs);
        let h = Httpd::start(&env, &vfs).unwrap();
        assert_eq!(h.registry().module_count(), 4);
        let r = h.serve(&env, &vfs, "/index.html").unwrap();
        assert_eq!(r.status, 200);
        h.shutdown(&env).unwrap();
    }

    #[test]
    fn socket_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Socket, 1, Errno::EMFILE));
        let vfs = Vfs::new();
        Httpd::install(&vfs);
        assert!(matches!(
            Httpd::start(&env, &vfs),
            Err(RunError::Fault(Errno::EMFILE))
        ));
    }

    #[test]
    fn bind_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Bind, 1, Errno::EACCES));
        let vfs = Vfs::new();
        Httpd::install(&vfs);
        assert!(Httpd::start(&env, &vfs).is_err());
    }

    #[test]
    fn shutdown_flush_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fflush, 1, Errno::EIO));
        let vfs = Vfs::new();
        Httpd::install(&vfs);
        let h = Httpd::start(&env, &vfs).unwrap();
        assert!(h.shutdown(&env).is_err());
    }
}
