//! Connection handling and request dispatch.

use super::modules::ModuleRegistry;
use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{CallResult, Errno, Func, LibcEnv};

/// An HTTP response (status + body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Accepts and serves one connection for `path`.
///
/// Network shape per request: `accept`, `recv`, checked `malloc` for the
/// request buffer (OOM → graceful 500), dispatch, `send`, `close`. `EINTR`
/// on `accept`/`recv` is retried a bounded number of times (a genuine retry
/// loop, fuel-limited so a stuck peer reads as a hang, §2's "when" axis).
pub fn serve_one(
    env: &LibcEnv,
    vfs: &Vfs,
    registry: &ModuleRegistry,
    path: &str,
) -> Result<Response, RunError> {
    let _f = env.frame("ap_process_connection");
    env.block(MODULE, 20);
    // Accept with EINTR retry.
    retry_eintr(env, Func::Accept)?;
    // Receive the request line, EINTR-retried as well.
    retry_eintr(env, Func::Recv)?;
    // Request pool allocation: CHECKED (Apache's apr pools log and 500).
    if env.call(Func::Malloc).failed() {
        env.block(MODULE, 21); // Recovery: logged OOM, 500 response.
        let _ = env.call(Func::Send);
        return Ok(Response {
            status: 500,
            body: b"internal error".to_vec(),
        });
    }
    let resp = dispatch(env, vfs, registry, path)?;
    if let CallResult::Fail(e) = env.call(Func::Send) {
        env.block(MODULE, 22); // Recovery: client gone, log and move on.
        return Err(RunError::Fault(e));
    }
    env.block(MODULE, 23);
    Ok(resp)
}

/// Retries a call while the injector reports `EINTR`; non-EINTR failures
/// propagate, and fuel exhaustion reads as a hang.
fn retry_eintr(env: &LibcEnv, func: Func) -> RunResult {
    let _f = env.frame("net_retry_loop");
    loop {
        match env.call(func) {
            CallResult::Ok => return Ok(()),
            CallResult::Fail(Errno::EINTR) => {
                env.block(MODULE, 24);
                if !env.burn_fuel() {
                    return Err(RunError::Hang);
                }
            }
            CallResult::Fail(e) => {
                env.block(MODULE, 25); // Recovery: connection error log.
                return Err(RunError::Fault(e));
            }
        }
    }
}

/// Routes the request to the static-file or CGI handler.
fn dispatch(
    env: &LibcEnv,
    vfs: &Vfs,
    registry: &ModuleRegistry,
    path: &str,
) -> Result<Response, RunError> {
    let _f = env.frame("ap_invoke_handler");
    env.block(MODULE, 26);
    if let Some(script) = path.strip_prefix("/cgi/") {
        return cgi_handler(env, registry, script);
    }
    let full = format!("{}{}", registry.document_root(), path);
    match vfs.read_all(env, &full) {
        Ok(body) => {
            env.block(MODULE, 27);
            Ok(Response { status: 200, body })
        }
        Err(e) if e.errno() == Errno::ENOENT => {
            env.block(MODULE, 28);
            Ok(Response {
                status: 404,
                body: b"not found".to_vec(),
            })
        }
        Err(e) => {
            env.block(MODULE, 29); // Recovery: I/O error → 500 + log.
            let _ = e;
            Ok(Response {
                status: 500,
                body: b"io error".to_vec(),
            })
        }
    }
}

/// The CGI handler: present only when the `cgi` module is loaded.
///
/// # Panics
///
/// Carries a second, rarer unchecked allocation: the environment-block
/// `calloc` result is used without a check (a deliberate deep-path bug —
/// AFEX finds it only after learning the network/CGI region is fertile).
fn cgi_handler(
    env: &LibcEnv,
    registry: &ModuleRegistry,
    script: &str,
) -> Result<Response, RunError> {
    let _f = env.frame("cgi_handler");
    env.block(MODULE, 30);
    if !registry.has_module("cgi") {
        return Ok(Response {
            status: 404,
            body: b"cgi disabled".to_vec(),
        });
    }
    // The CGI environment block: UNCHECKED calloc (deep-path bug).
    if env.call(Func::Calloc).failed() {
        panic!("segfault: NULL environment block in cgi_handler (mod_cgi.c:221)");
    }
    env.block(MODULE, 31);
    Ok(Response {
        status: 200,
        body: format!("cgi:{script}").into_bytes(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    fn fixture() -> (Vfs, ModuleRegistry) {
        let vfs = Vfs::new();
        super::super::config::install(&vfs);
        let reg = ModuleRegistry::new();
        reg.set_document_root("/www");
        reg.register(&LibcEnv::fault_free(), "cgi");
        (vfs, reg)
    }

    #[test]
    fn serves_static_file() {
        let env = LibcEnv::fault_free();
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/index.html").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.body, b"<html>hello</html>");
    }

    #[test]
    fn missing_file_is_404() {
        let env = LibcEnv::fault_free();
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/ghost.html").unwrap();
        assert_eq!(r.status, 404);
    }

    #[test]
    fn read_io_fault_is_500_not_crash() {
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 1, Errno::EIO));
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/index.html").unwrap();
        assert_eq!(r.status, 500);
    }

    #[test]
    fn request_pool_oom_is_500() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/index.html").unwrap();
        assert_eq!(r.status, 500);
    }

    #[test]
    fn eintr_on_accept_is_retried() {
        let env = LibcEnv::new(FaultPlan::single(Func::Accept, 1, Errno::EINTR));
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/index.html").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(env.call_count(Func::Accept), 2);
    }

    #[test]
    fn connreset_on_recv_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Recv, 1, Errno::ECONNRESET));
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/index.html");
        assert_eq!(r, Err(RunError::Fault(Errno::ECONNRESET)));
    }

    #[test]
    fn cgi_serves_when_module_loaded() {
        let env = LibcEnv::fault_free();
        let (vfs, reg) = fixture();
        let r = serve_one(&env, &vfs, &reg, "/cgi/hello").unwrap();
        assert_eq!(r.body, b"cgi:hello");
    }

    #[test]
    #[should_panic(expected = "mod_cgi.c:221")]
    fn cgi_calloc_fault_segfaults() {
        let env = LibcEnv::new(FaultPlan::single(Func::Calloc, 1, Errno::ENOMEM));
        let (vfs, reg) = fixture();
        let _ = serve_one(&env, &vfs, &reg, "/cgi/hello");
    }

    #[test]
    fn send_fault_is_logged_error() {
        let env = LibcEnv::new(FaultPlan::single(Func::Send, 1, Errno::EPIPE));
        let (vfs, reg) = fixture();
        assert_eq!(
            serve_one(&env, &vfs, &reg, "/index.html"),
            Err(RunError::Fault(Errno::EPIPE))
        );
    }
}
