//! The server's module registry.

use super::MODULE;
use afex_inject::LibcEnv;
use std::cell::RefCell;

/// Registered modules and server-wide settings.
#[derive(Debug, Default)]
pub struct ModuleRegistry {
    state: RefCell<State>,
}

#[derive(Debug, Default)]
struct State {
    modules: Vec<String>,
    document_root: String,
}

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ModuleRegistry::default()
    }

    /// Registers a module by short name.
    pub fn register(&self, env: &LibcEnv, name: &str) {
        env.block(MODULE, 10);
        self.state.borrow_mut().modules.push(name.to_owned());
    }

    /// Whether a module is loaded.
    pub fn has_module(&self, name: &str) -> bool {
        self.state.borrow().modules.iter().any(|m| m == name)
    }

    /// Number of loaded modules.
    pub fn module_count(&self) -> usize {
        self.state.borrow().modules.len()
    }

    /// Sets the document root.
    pub fn set_document_root(&self, root: &str) {
        self.state.borrow_mut().document_root = root.to_owned();
    }

    /// The configured document root.
    pub fn document_root(&self) -> String {
        self.state.borrow().document_root.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let env = LibcEnv::fault_free();
        let r = ModuleRegistry::new();
        r.register(&env, "mime");
        r.register(&env, "log");
        assert!(r.has_module("mime"));
        assert!(!r.has_module("cgi"));
        assert_eq!(r.module_count(), 2);
    }

    #[test]
    fn document_root_roundtrip() {
        let r = ModuleRegistry::new();
        assert_eq!(r.document_root(), "");
        r.set_document_root("/www");
        assert_eq!(r.document_root(), "/www");
    }
}
