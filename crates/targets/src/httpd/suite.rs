//! The httpd test suite: 58 tests (`Xtest` of `Φ_Apache`).
//!
//! Eight base workload families fanned out over request-mix parameters,
//! clamped to 58 tests. Every test boots the server (so config-parse
//! faults — including the Fig. 7 `strdup` bug — are reachable from every
//! test), then drives a family-specific request mix.

use super::server::Httpd;
use super::MODULE;
use crate::harness::{RunError, RunResult, Target};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Suite size: `Xtest = (1, ..., 58)`.
pub const NUM_TESTS: usize = 58;

/// Number of base workload families.
pub const FAMILIES: usize = 8;

/// The httpd system under test.
#[derive(Debug, Default)]
pub struct HttpdTarget;

impl HttpdTarget {
    /// Creates the target.
    pub fn new() -> Self {
        HttpdTarget
    }

    /// Decomposes a test id into (family, scale), with ids contiguous
    /// within a family (locality along `Xtest`).
    pub fn decompose(test_id: usize) -> (usize, usize) {
        ((test_id / 8).min(FAMILIES - 1), test_id % 8)
    }
}

fn check(cond: bool, what: &str) -> RunResult {
    if cond {
        Ok(())
    } else {
        Err(RunError::Check(format!("assertion failed: {what}")))
    }
}

impl Target for HttpdTarget {
    fn name(&self) -> &str {
        "httpd"
    }

    fn num_tests(&self) -> usize {
        NUM_TESTS
    }

    fn total_blocks(&self) -> usize {
        super::TOTAL_BLOCKS
    }

    fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult {
        let (family, scale) = Self::decompose(test_id);
        let vfs = Vfs::new();
        Httpd::install(&vfs);
        let h = Httpd::start(env, &vfs)?;
        env.block(MODULE, 50 + family as u32);
        let n = 1 + scale % 4; // Requests per test, 1..=4.
        match family {
            // Static GETs.
            0 => {
                for _ in 0..n {
                    let r = h.serve(env, &vfs, "/index.html")?;
                    check(r.status == 200, "static 200")?;
                }
                h.shutdown(env)
            }
            // Second document.
            1 => {
                let r = h.serve(env, &vfs, "/about.html")?;
                check(
                    r.status == 200 && r.body.starts_with(b"<html>"),
                    "about page",
                )?;
                h.shutdown(env)
            }
            // 404s.
            2 => {
                for i in 0..n {
                    let r = h.serve(env, &vfs, &format!("/missing{i}.html"))?;
                    check(r.status == 404, "missing is 404")?;
                }
                h.shutdown(env)
            }
            // CGI requests.
            3 => {
                for i in 0..n {
                    let r = h.serve(env, &vfs, &format!("/cgi/script{i}"))?;
                    check(r.status == 200, "cgi 200")?;
                }
                h.shutdown(env)
            }
            // Mixed static + 404.
            4 => {
                let ok = h.serve(env, &vfs, "/index.html")?;
                let missing = h.serve(env, &vfs, "/nope")?;
                check(ok.status == 200 && missing.status == 404, "mixed statuses")?;
                h.shutdown(env)
            }
            // Mixed static + CGI.
            5 => {
                let s = h.serve(env, &vfs, "/about.html")?;
                let c = h.serve(env, &vfs, "/cgi/x")?;
                check(s.status == 200 && c.status == 200, "static+cgi")?;
                h.shutdown(env)
            }
            // Config sanity (module presence).
            6 => {
                check(h.registry().module_count() == 4, "4 modules loaded")?;
                check(h.registry().has_module("mime"), "mime loaded")?;
                h.shutdown(env)
            }
            // Sustained serving (largest request counts).
            _ => {
                for i in 0..(n * 2) {
                    let path = if i % 2 == 0 {
                        "/index.html"
                    } else {
                        "/about.html"
                    };
                    let r = h.serve(env, &vfs, path)?;
                    check(r.status == 200, "sustained 200")?;
                }
                h.shutdown(env)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{baseline_pass_count, run_test};
    use afex_inject::{Errno, FaultPlan, Func, TestStatus};

    #[test]
    fn all_58_tests_pass_fault_free() {
        assert_eq!(baseline_pass_count(&HttpdTarget::new()), NUM_TESTS);
    }

    #[test]
    fn strdup_fault_crashes_every_test() {
        // Config parsing runs in every test: the Fig. 7 bug is global.
        let t = HttpdTarget::new();
        for id in [0usize, 20, 57] {
            let o = run_test(&t, id, &FaultPlan::single(Func::Strdup, 2, Errno::ENOMEM));
            assert!(o.status.is_crash(), "test {id}: {:?}", o.status);
            if let TestStatus::Crashed(m) = &o.status {
                assert!(m.contains("config.c:579"), "{m}");
            }
        }
    }

    #[test]
    fn cgi_calloc_fault_crashes_only_cgi_tests() {
        let t = HttpdTarget::new();
        // Config does 4 callocs (one per module); the CGI env block is #5.
        let plan = FaultPlan::single(Func::Calloc, 5, Errno::ENOMEM);
        let cgi = run_test(&t, 24, &plan); // Family 3 = CGI.
        assert!(cgi.status.is_crash(), "{:?}", cgi.status);
        let static_only = run_test(&t, 0, &plan);
        assert_eq!(static_only.status, TestStatus::Passed); // Never triggers.
    }

    #[test]
    fn request_oom_degrades_to_500_failure() {
        let t = HttpdTarget::new();
        // Request-pool malloc is checked → 500 response → assertion fails
        // gracefully (the test expected 200).
        let o = run_test(&t, 0, &FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        assert_eq!(o.status, TestStatus::Failed);
    }

    #[test]
    fn eintr_storm_hangs() {
        // Both accept calls in a 2-request test keep EINTR-ing: with the
        // singleton plan only call #1 is hit once, so use a multi plan that
        // also drains the fuel? A single EINTR is retried successfully —
        // the hang needs persistent interruption, modelled by injecting
        // EINTR into every retry via repeated atomic faults.
        let faults: Vec<_> = (1..=12000)
            .map(|n| afex_inject::AtomicFault::new(Func::Accept, n, Errno::EINTR))
            .collect();
        let t = HttpdTarget::new();
        let o = run_test(&t, 0, &FaultPlan::multi(faults));
        assert_eq!(o.status, TestStatus::Hung);
    }

    #[test]
    fn decompose_is_contiguous() {
        assert_eq!(HttpdTarget::decompose(0).0, 0);
        assert_eq!(HttpdTarget::decompose(7).0, 0);
        assert_eq!(HttpdTarget::decompose(8).0, 1);
        assert_eq!(HttpdTarget::decompose(57).0, FAMILIES - 1);
    }
}
