//! Configuration parsing, carrying the Fig. 7 unchecked-`strdup` bug.

use super::modules::ModuleRegistry;
use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{CallResult, Errno, Func, LibcEnv};

/// Path of the server configuration file.
pub const CONF_PATH: &str = "/etc/httpd.conf";

/// Installs a default configuration into a VFS.
pub fn install(vfs: &Vfs) {
    vfs.seed_dir("/etc");
    vfs.seed_dir("/www");
    vfs.seed_file("/www/index.html", b"<html>hello</html>");
    vfs.seed_file("/www/about.html", b"<html>about</html>");
    vfs.seed_file(
        CONF_PATH,
        b"Listen 80\n\
          LoadModule core\n\
          LoadModule mime\n\
          LoadModule log\n\
          LoadModule cgi\n\
          DocumentRoot /www\n",
    );
}

/// Parses the configuration, registering modules as directives arrive.
///
/// Stream-level parse structure: `fopen` + one `fgets` per line + `fclose`.
/// All allocations are checked *except* the `strdup` of each module's
/// short name (the seeded Fig. 7 bug).
///
/// # Panics
///
/// Panics with a segfault message when an injected `strdup` failure makes
/// `ap_module_short_names[...][len] = '\0'` dereference NULL
/// (`config.c:579`).
pub fn parse(env: &LibcEnv, vfs: &Vfs, registry: &ModuleRegistry) -> RunResult {
    let _f = env.frame("ap_read_config");
    env.block(MODULE, 0);
    // fopen of the configuration file.
    if let CallResult::Fail(e) = env.call(Func::Fopen) {
        env.block(MODULE, 1); // Recovery: cannot open config, clean exit.
        return Err(RunError::Fault(e));
    }
    let data = vfs
        .contents(CONF_PATH)
        .ok_or(RunError::Fault(Errno::ENOENT))?;
    let text = String::from_utf8_lossy(&data).into_owned();
    for line in text.lines() {
        // One fgets per line.
        if let CallResult::Fail(e) = env.call(Func::Fgets) {
            env.block(MODULE, 2); // Recovery: read error diagnostic.
            let _ = env.call(Func::Fclose);
            return Err(RunError::Fault(e));
        }
        if let Some(name) = line.strip_prefix("LoadModule ") {
            register_module(env, registry, name.trim())?;
        } else if let Some(root) = line.strip_prefix("DocumentRoot ") {
            env.block(MODULE, 3);
            registry.set_document_root(root.trim());
        }
    }
    if let CallResult::Fail(e) = env.call(Func::Fclose) {
        env.block(MODULE, 4); // Recovery: close diagnostic.
        return Err(RunError::Fault(e));
    }
    env.block(MODULE, 5);
    Ok(())
}

/// `ap_add_module` + the Fig. 7 lines.
fn register_module(env: &LibcEnv, registry: &ModuleRegistry, sym_name: &str) -> RunResult {
    let _f = env.frame("ap_add_module");
    env.block(MODULE, 6);
    // Module structure allocation: CHECKED, graceful shutdown on OOM.
    if env.call(Func::Calloc).failed() {
        env.block(MODULE, 7); // Recovery: logged OOM, clean shutdown.
        return Err(RunError::Fault(Errno::ENOMEM));
    }
    // config.c:578 — `ap_module_short_names[m->module_index] =
    // strdup(sym_name);` — UNCHECKED.
    let short_name = if env.call(Func::Strdup).failed() {
        None // NULL.
    } else {
        Some(sym_name.to_owned())
    };
    // config.c:579 — `ap_module_short_names[...][len] = '\0';`
    // THE BUG: dereferences the strdup result without a NULL check.
    let Some(name) = short_name else {
        panic!("segfault: NULL pointer dereference at config.c:579 (ap_module_short_names)");
    };
    registry.register(env, &name);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    #[test]
    fn parses_default_config() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        install(&vfs);
        let reg = ModuleRegistry::new();
        parse(&env, &vfs, &reg).unwrap();
        assert_eq!(reg.module_count(), 4);
        assert_eq!(reg.document_root(), "/www");
        // 6 lines → 6 fgets.
        assert_eq!(env.call_count(Func::Fgets), 6);
    }

    #[test]
    fn fopen_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fopen, 1, Errno::EACCES));
        let vfs = Vfs::new();
        install(&vfs);
        let r = parse(&env, &vfs, &ModuleRegistry::new());
        assert_eq!(r, Err(RunError::Fault(Errno::EACCES)));
    }

    #[test]
    fn fgets_fault_is_graceful_and_closes() {
        let env = LibcEnv::new(FaultPlan::single(Func::Fgets, 3, Errno::EIO));
        let vfs = Vfs::new();
        install(&vfs);
        assert!(parse(&env, &vfs, &ModuleRegistry::new()).is_err());
        assert_eq!(env.call_count(Func::Fclose), 1);
    }

    #[test]
    fn checked_calloc_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Calloc, 2, Errno::ENOMEM));
        let vfs = Vfs::new();
        install(&vfs);
        let r = parse(&env, &vfs, &ModuleRegistry::new());
        assert_eq!(r, Err(RunError::Fault(Errno::ENOMEM)));
    }

    #[test]
    #[should_panic(expected = "config.c:579")]
    fn strdup_fault_segfaults() {
        // The Fig. 7 bug: any of the 4 LoadModule strdups failing crashes.
        let env = LibcEnv::new(FaultPlan::single(Func::Strdup, 3, Errno::ENOMEM));
        let vfs = Vfs::new();
        install(&vfs);
        let _ = parse(&env, &vfs, &ModuleRegistry::new());
    }
}
