//! The MongoDB stand-in: a document store at two maturity stages (§7.6).
//!
//! - **v0.8** (pre-production): few features, light environment
//!   interaction — a save path writing one data file, no journal, no
//!   network layer. Failure opportunities are few and *concentrated* in
//!   the save path, which is why fitness-guided search beats random by a
//!   wide margin (the paper measures 2.37×).
//! - **v2.0** (industrial strength): journaling, a network protocol layer
//!   and an aggregation feature. More features mean heavier interaction
//!   with the environment and *more* total failure opportunities, spread
//!   more uniformly over the fault space — the fitness/random gap narrows
//!   (1.43×), and the new aggregation code carries the one crash scenario
//!   AFEX found in v2.0 but not v0.8.

pub mod store;
pub mod suite;

pub use store::{DocStore, Version};
pub use suite::DocstoreTarget;

/// The module name under which docstore blocks are recorded.
pub const MODULE: &str = "docstore";

/// Total declared basic blocks in the docstore.
pub const TOTAL_BLOCKS: usize = 48;
