//! The document store engine, parameterized by development stage.

use super::MODULE;
use crate::harness::{RunError, RunResult};
use crate::vfs::Vfs;
use afex_inject::{CallResult, Errno, Func, LibcEnv};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Development stage of the store (§7.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Version {
    /// Pre-production (MongoDB 0.8 analogue).
    V0_8,
    /// Industrial-strength production release (MongoDB 2.0 analogue).
    V2_0,
}

/// Path of the main data file.
pub const DATA_PATH: &str = "/db/data.ns";

/// Path of the journal (v2.0 only).
pub const JOURNAL_PATH: &str = "/db/journal.0";

/// A miniature document store.
#[derive(Debug)]
pub struct DocStore {
    version: Version,
    docs: RefCell<BTreeMap<u64, String>>,
}

impl DocStore {
    /// Installs the data directory into a VFS.
    pub fn install(vfs: &Vfs) {
        vfs.seed_dir("/db");
    }

    /// Boots a store.
    ///
    /// v0.8 boots with a bare allocation; v2.0 additionally brings up the
    /// network listener and replays the journal.
    pub fn start(env: &LibcEnv, vfs: &Vfs, version: Version) -> Result<Self, RunError> {
        let _f = env.frame("mongod_main");
        env.block(MODULE, 0);
        if env.call(Func::Malloc).failed() {
            env.block(MODULE, 1); // Recovery: startup OOM diagnostic.
            return Err(RunError::Fault(Errno::ENOMEM));
        }
        let store = DocStore {
            version,
            docs: RefCell::new(BTreeMap::new()),
        };
        if version == Version::V2_0 {
            env.block(MODULE, 2);
            // Network listener.
            for (f, b) in [(Func::Socket, 3u32), (Func::Bind, 4), (Func::Listen, 5)] {
                if let CallResult::Fail(e) = env.call(f) {
                    env.block(MODULE, b); // Recovery: clean startup abort.
                    return Err(RunError::Fault(e));
                }
            }
            // Journal replay. A torn tail (a final entry missing its
            // newline — a crash landed mid-append) is dropped; every
            // complete entry is recovered.
            if vfs.file_exists(JOURNAL_PATH) {
                env.block(MODULE, 6);
                let data = vfs.read_all(env, JOURNAL_PATH).map_err(|e| {
                    env.block(MODULE, 7); // Recovery: journal diagnostic.
                    RunError::Fault(e.errno())
                })?;
                let text = String::from_utf8_lossy(&data);
                let complete = &text[..text.rfind('\n').map_or(0, |i| i + 1)];
                for line in complete.lines() {
                    if let Some((k, v)) = line.split_once('=') {
                        if let Ok(k) = k.parse() {
                            store.docs.borrow_mut().insert(k, v.to_owned());
                        }
                    }
                }
            }
        }
        Ok(store)
    }

    /// The store's version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Inserts a document.
    ///
    /// v2.0 journals each insert (open/write/fsync/close per entry) and
    /// receives the document over the network first; v0.8 only mutates
    /// memory. All failures here are handled gracefully in both versions.
    pub fn insert(&self, env: &LibcEnv, vfs: &Vfs, id: u64, doc: &str) -> RunResult {
        let _f = env.frame("doc_insert");
        env.block(MODULE, 10);
        if self.version == Version::V2_0 {
            // Wire receive.
            if let CallResult::Fail(e) = env.call(Func::Recv) {
                env.block(MODULE, 11); // Recovery: drop connection.
                return Err(RunError::Fault(e));
            }
        }
        if env.call(Func::Malloc).failed() {
            env.block(MODULE, 12); // Recovery: OOM → operation fails.
            return Err(RunError::Fault(Errno::ENOMEM));
        }
        if self.version == Version::V2_0 {
            self.journal_append(env, vfs, id, doc)?;
        }
        self.docs.borrow_mut().insert(id, doc.to_owned());
        Ok(())
    }

    /// Appends one entry to the journal. Append-only: the journal is
    /// opened with `O_APPEND` and only the new entry is written (honoring
    /// short write counts), so neither a fault here nor a crash can touch
    /// entries journaled by earlier inserts.
    fn journal_append(&self, env: &LibcEnv, vfs: &Vfs, id: u64, doc: &str) -> RunResult {
        let _f = env.frame("journal_append");
        env.block(MODULE, 13);
        let entry = format!("{id}={doc}\n");
        let fd = vfs.open_append(env, JOURNAL_PATH).map_err(|e| {
            env.block(MODULE, 14); // Recovery: journal open diagnostic.
            RunError::Fault(e.errno())
        })?;
        let write = {
            let bytes = entry.as_bytes();
            let mut written = 0usize;
            let mut result = Ok(());
            while written < bytes.len() {
                if !env.burn_fuel() {
                    let _ = vfs.close(env, fd);
                    return Err(RunError::Hang);
                }
                match vfs.write(env, fd, &bytes[written..]) {
                    Ok(n) => written += n,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            result
        };
        let sync = if write.is_ok() {
            vfs.fsync(env, fd).map_err(Into::into)
        } else {
            Ok(())
        };
        let close = vfs.close(env, fd);
        write.map_err(|e| {
            env.block(MODULE, 15); // Recovery: journal write rollback.
            RunError::Fault(e.errno())
        })?;
        sync.inspect_err(|_: &RunError| {
            env.block(MODULE, 16);
        })?;
        close.map_err(|e| {
            env.block(MODULE, 17);
            RunError::Fault(e.errno())
        })?;
        Ok(())
    }

    /// Finds a document by id.
    pub fn find(&self, env: &LibcEnv, id: u64) -> Option<String> {
        let _f = env.frame("doc_find");
        env.block(MODULE, 18);
        self.docs.borrow().get(&id).cloned()
    }

    /// Saves the whole store to the data file (both versions).
    pub fn save(&self, env: &LibcEnv, vfs: &Vfs) -> RunResult {
        let _f = env.frame("doc_save");
        env.block(MODULE, 19);
        let rendered: String = self
            .docs
            .borrow()
            .iter()
            .map(|(k, v)| format!("{k}={v}\n"))
            .collect();
        vfs.write_all(env, DATA_PATH, rendered.as_bytes())
            .map_err(|e| {
                env.block(MODULE, 20); // Recovery: save diagnostic.
                RunError::Fault(e.errno())
            })
    }

    /// Aggregates document lengths (v2.0 feature).
    ///
    /// # Panics
    ///
    /// Carries v2.0's one crash scenario: the aggregation scratch buffer's
    /// `malloc` result is used unchecked (the new-feature bug of §7.6 —
    /// "more features appear to indeed come at the cost of reliability").
    pub fn aggregate(&self, env: &LibcEnv) -> Result<usize, RunError> {
        let _f = env.frame("doc_aggregate");
        env.block(MODULE, 21);
        assert_eq!(
            self.version,
            Version::V2_0,
            "aggregate is a v2.0-only feature"
        );
        // UNCHECKED scratch allocation — the seeded v2.0 crash.
        if env.call(Func::Malloc).failed() {
            panic!("segfault: NULL scratch buffer in aggregation pipeline (pipeline.cpp:88)");
        }
        env.block(MODULE, 22);
        Ok(self.docs.borrow().values().map(String::len).sum())
    }

    /// All documents (assertion helper for the recovery oracle; no libc
    /// calls).
    pub fn dump(&self) -> BTreeMap<u64, String> {
        self.docs.borrow().clone()
    }

    /// Number of stored documents.
    pub fn len(&self) -> usize {
        self.docs.borrow().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    fn boot(v: Version) -> (LibcEnv, Vfs, DocStore) {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        DocStore::install(&vfs);
        let s = DocStore::start(&env, &vfs, v).unwrap();
        (env, vfs, s)
    }

    #[test]
    fn v08_insert_find_save() {
        let (env, vfs, s) = boot(Version::V0_8);
        s.insert(&env, &vfs, 1, "doc-one").unwrap();
        assert_eq!(s.find(&env, 1).as_deref(), Some("doc-one"));
        s.save(&env, &vfs).unwrap();
        assert!(vfs.file_exists(DATA_PATH));
        // v0.8 never journals or touches the network.
        assert_eq!(env.call_count(Func::Fsync), 0);
        assert_eq!(env.call_count(Func::Recv), 0);
    }

    #[test]
    fn v20_journals_every_insert() {
        let (env, vfs, s) = boot(Version::V2_0);
        s.insert(&env, &vfs, 1, "a").unwrap();
        s.insert(&env, &vfs, 2, "b").unwrap();
        assert_eq!(env.call_count(Func::Fsync), 2);
        let j = vfs.contents(JOURNAL_PATH).unwrap();
        assert_eq!(String::from_utf8_lossy(&j), "1=a\n2=b\n");
    }

    #[test]
    fn v20_recovers_from_journal() {
        let (env, vfs, s) = boot(Version::V2_0);
        s.insert(&env, &vfs, 7, "persisted").unwrap();
        drop(s);
        let s2 = DocStore::start(&env, &vfs, Version::V2_0).unwrap();
        assert_eq!(s2.find(&env, 7).as_deref(), Some("persisted"));
    }

    #[test]
    fn v08_has_fewer_env_interactions_per_insert() {
        let (env8, vfs8, s8) = boot(Version::V0_8);
        s8.insert(&env8, &vfs8, 1, "x").unwrap();
        let calls_v08: u32 = env8.call_counts().values().sum();
        let (env2, vfs2, s2) = boot(Version::V2_0);
        s2.insert(&env2, &vfs2, 1, "x").unwrap();
        let calls_v20: u32 = env2.call_counts().values().sum();
        assert!(calls_v20 > calls_v08 * 2, "{calls_v20} vs {calls_v08}");
    }

    #[test]
    fn v20_journal_survives_faulty_later_insert() {
        // Append-only journaling: a write fault during insert #2 must not
        // touch insert #1's journaled entry (the old rewrite truncated
        // the whole journal first, losing it even on a graceful failure).
        let (env, vfs, s) = boot(Version::V2_0);
        s.insert(&env, &vfs, 1, "precious").unwrap();
        let env2 = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        assert!(s.insert(&env2, &vfs, 2, "doomed").is_err());
        vfs.crash();
        let env3 = LibcEnv::fault_free();
        let s2 = DocStore::start(&env3, &vfs, Version::V2_0).unwrap();
        assert_eq!(s2.find(&env3, 1).as_deref(), Some("precious"));
        assert_eq!(s2.len(), 1);
    }

    #[test]
    fn v20_replay_drops_torn_journal_tail() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        DocStore::install(&vfs);
        vfs.seed_file(JOURNAL_PATH, b"1=a\n2=b\n3=to");
        let s = DocStore::start(&env, &vfs, Version::V2_0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.find(&env, 3), None);
    }

    #[test]
    fn v20_journal_append_completes_short_writes() {
        use crate::vfs_fault::{FaultKind, FaultRule, PathMatch, VfsOp};
        let (env, vfs, s) = boot(Version::V2_0);
        vfs.arm_rules(vec![FaultRule {
            op: VfsOp::Write,
            path: PathMatch::Contains("journal".into()),
            nth: 1,
            kind: FaultKind::ShortWrite,
        }]);
        s.insert(&env, &vfs, 1, "payload").unwrap();
        let j = vfs.contents(JOURNAL_PATH).unwrap();
        assert_eq!(String::from_utf8_lossy(&j), "1=payload\n");
    }

    #[test]
    fn v20_journal_write_fault_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        let vfs = Vfs::new();
        DocStore::install(&vfs);
        let s = DocStore::start(&env, &vfs, Version::V2_0).unwrap();
        assert!(s.insert(&env, &vfs, 1, "x").is_err());
        assert_eq!(s.len(), 0, "failed insert must not be visible");
    }

    #[test]
    #[should_panic(expected = "pipeline.cpp:88")]
    fn v20_aggregate_oom_crashes() {
        let (.., s) = {
            let env = LibcEnv::fault_free();
            let vfs = Vfs::new();
            DocStore::install(&vfs);
            let s = DocStore::start(&env, &vfs, Version::V2_0).unwrap();
            (env, vfs, s)
        };
        // Fresh env: the aggregation malloc is call #1.
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        let _ = s.aggregate(&env);
    }

    #[test]
    fn v20_aggregate_works() {
        let (env, vfs, s) = boot(Version::V2_0);
        s.insert(&env, &vfs, 1, "ab").unwrap();
        s.insert(&env, &vfs, 2, "cde").unwrap();
        assert_eq!(s.aggregate(&env).unwrap(), 5);
    }

    #[test]
    fn v08_insert_oom_is_graceful() {
        let env = LibcEnv::new(FaultPlan::single(Func::Malloc, 2, Errno::ENOMEM));
        let vfs = Vfs::new();
        DocStore::install(&vfs);
        let s = DocStore::start(&env, &vfs, Version::V0_8).unwrap();
        assert!(s.insert(&env, &vfs, 1, "x").is_err());
    }
}
