//! The docstore test suite: 30 tests per version (§7.6's workloads).
//!
//! Both versions are "exposed to identical setup and workloads": the same
//! test list runs against either stage; features missing from v0.8 (the
//! aggregation pipeline) degrade to the closest v0.8 behaviour, as the
//! paper's shared-workload methodology requires.

use super::store::{DocStore, Version, DATA_PATH};
use super::MODULE;
use crate::harness::{RunError, RunResult, Target};
use crate::vfs::Vfs;
use afex_inject::LibcEnv;

/// Suite size per version.
pub const NUM_TESTS: usize = 30;

/// The docstore system under test, pinned to one version.
#[derive(Debug)]
pub struct DocstoreTarget {
    version: Version,
}

impl DocstoreTarget {
    /// Creates a target for the given development stage.
    pub fn new(version: Version) -> Self {
        DocstoreTarget { version }
    }

    /// The pinned version.
    pub fn version(&self) -> Version {
        self.version
    }
}

fn check(cond: bool, what: &str) -> RunResult {
    if cond {
        Ok(())
    } else {
        Err(RunError::Check(format!("assertion failed: {what}")))
    }
}

impl Target for DocstoreTarget {
    fn name(&self) -> &str {
        match self.version {
            Version::V0_8 => "docstore-v0.8",
            Version::V2_0 => "docstore-v2.0",
        }
    }

    fn num_tests(&self) -> usize {
        NUM_TESTS
    }

    fn total_blocks(&self) -> usize {
        super::TOTAL_BLOCKS
    }

    fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult {
        let vfs = Vfs::new();
        DocStore::install(&vfs);
        let s = DocStore::start(env, &vfs, self.version)?;
        env.block(MODULE, 30 + (test_id % 10) as u32);
        let family = test_id / 5; // 6 families × 5 scales.
        let n = 1 + (test_id % 5) as u64; // 1..=5 documents.
        match family {
            // Insert-and-find.
            0 => {
                for i in 0..n {
                    s.insert(env, &vfs, i, &format!("doc{i}"))?;
                }
                check(
                    s.find(env, 0).as_deref() == Some("doc0"),
                    "first doc readable",
                )
            }
            // Missing lookups.
            1 => {
                s.insert(env, &vfs, 1, "only")?;
                check(s.find(env, 99).is_none(), "missing id is none")
            }
            // Save path.
            2 => {
                for i in 0..n {
                    s.insert(env, &vfs, i, "v")?;
                }
                s.save(env, &vfs)?;
                check(vfs.file_exists(DATA_PATH), "data file written")
            }
            // Overwrites.
            3 => {
                s.insert(env, &vfs, 1, "old")?;
                s.insert(env, &vfs, 1, "new")?;
                check(s.find(env, 1).as_deref() == Some("new"), "overwrite wins")
            }
            // Aggregation (v2.0 feature; v0.8 runs the equivalent
            // client-side sum over find()).
            4 => {
                for i in 0..n {
                    s.insert(env, &vfs, i, "xy")?;
                }
                let total = if self.version == Version::V2_0 {
                    s.aggregate(env)?
                } else {
                    (0..n).filter_map(|i| s.find(env, i)).map(|d| d.len()).sum()
                };
                check(total == 2 * n as usize, "aggregate sum")
            }
            // Restart durability (v2.0 journals; v0.8 relies on save).
            _ => {
                s.insert(env, &vfs, 42, "keep")?;
                s.save(env, &vfs)?;
                if self.version == Version::V2_0 {
                    let s2 = DocStore::start(env, &vfs, self.version)?;
                    check(s2.find(env, 42).as_deref() == Some("keep"), "journaled")
                } else {
                    check(vfs.file_exists(DATA_PATH), "saved before restart")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{baseline_pass_count, run_test};
    use afex_inject::{Errno, FaultPlan, Func, TestStatus};

    #[test]
    fn both_versions_pass_fault_free() {
        assert_eq!(
            baseline_pass_count(&DocstoreTarget::new(Version::V0_8)),
            NUM_TESTS
        );
        assert_eq!(
            baseline_pass_count(&DocstoreTarget::new(Version::V2_0)),
            NUM_TESTS
        );
    }

    #[test]
    fn v20_offers_more_failure_opportunities() {
        // Count failing single-fault malloc scenarios in both versions:
        // v2.0 must have strictly more (§7.6: more features, more failures).
        let count = |v: Version| {
            let t = DocstoreTarget::new(v);
            let mut fails = 0;
            for test in 0..NUM_TESTS {
                for call in 1..=8u32 {
                    let o = run_test(
                        &t,
                        test,
                        &FaultPlan::single(Func::Malloc, call, Errno::ENOMEM),
                    );
                    if o.status.is_failure() && o.triggered() {
                        fails += 1;
                    }
                }
            }
            fails
        };
        let v08 = count(Version::V0_8);
        let v20 = count(Version::V2_0);
        assert!(v20 > v08, "v2.0 {v20} vs v0.8 {v08}");
    }

    #[test]
    fn only_v20_has_a_crash_scenario() {
        // The aggregation crash exists in v2.0 only (§7.6: "AFEX found an
        // injection scenario that crashes v2.0, but did not find any way
        // to crash v0.8").
        let crash_exists = |v: Version| {
            let t = DocstoreTarget::new(v);
            (0..NUM_TESTS).any(|test| {
                (1..=8u32).any(|call| {
                    run_test(
                        &t,
                        test,
                        &FaultPlan::single(Func::Malloc, call, Errno::ENOMEM),
                    )
                    .status
                    .is_crash()
                })
            })
        };
        assert!(!crash_exists(Version::V0_8));
        assert!(crash_exists(Version::V2_0));
    }

    #[test]
    fn v20_network_fault_fails_inserts() {
        let t = DocstoreTarget::new(Version::V2_0);
        let o = run_test(&t, 0, &FaultPlan::single(Func::Recv, 1, Errno::ECONNRESET));
        assert_eq!(o.status, TestStatus::Failed);
        // v0.8 has no network layer: the same fault never triggers.
        let t8 = DocstoreTarget::new(Version::V0_8);
        let o8 = run_test(&t8, 0, &FaultPlan::single(Func::Recv, 1, Errno::ECONNRESET));
        assert_eq!(o8.status, TestStatus::Passed);
    }
}
