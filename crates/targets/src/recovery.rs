//! Crash-recovery oracle and the `vfs:*` target family.
//!
//! The paper's most valuable fault scenarios exercise *recovery* code —
//! §7.1's crash corpus is dominated by abort-and-recover paths. This
//! module turns the rule-driven faulty VFS into a target family that
//! tests exactly that path: run a workload under one injection rule,
//! [`crash`](crate::vfs::Vfs::crash) the machine, reopen with a fresh
//! engine, and check the recovered state against what the workload's
//! acknowledged operations permit.
//!
//! # The invariant
//!
//! Every workload statement gets a *fate* observed from the outside, the
//! way a client would see it:
//!
//! - **Acked** — the statement returned success; `fsynced` records
//!   whether a real (non-dropped) fsync of the commit log happened during
//!   the statement, observed from the replay log.
//! - **Failed** — the statement returned an error or aborted the server.
//!   Its record may or may not have reached the disk (a close failure
//!   after a successful fsync leaves it durable; a write failure leaves
//!   nothing).
//!
//! Because the (fixed) commit log is append-only and fsync flushes the
//! whole file, the durable log after a crash is a *prefix* of the
//! acknowledged history, possibly with failed statements missing, and the
//! prefix must reach at least the last fsync-acknowledged statement. The
//! valid recovered states are therefore: for every cut point at or after
//! the last fsynced ack, and every subset of the failed statements before
//! the cut, the state produced by applying that history. A recovered
//! state outside this set is a genuine durability violation — committed
//! rows lost, phantom rows resurrected, or a torn log — and is reported
//! as a crash. Replay must also be idempotent: crashing and reopening a
//! second time must reproduce the same state.
//!
//! Aborts during the *workload* (the WAL's deliberate panic on write
//! failure, the double-unlock bug) are not violations by themselves —
//! they are the abort-and-recover behaviour §7.1 describes — so they
//! classify as `Failed`, and only phase B (recovery) decides whether the
//! abort lost data.

use crate::docstore::store::{DocStore, Version};
use crate::harness::catch_crash;
use crate::minidb::engine::MiniDb;
use crate::minidb::wal::WalMode;
use crate::vfs::Vfs;
use crate::vfs_fault::{Decision, FaultKind, FaultRule, PathMatch, VfsOp};
use afex_inject::{Errno, LibcEnv, TestOutcome, TestStatus};
use afex_space::{Axis, AxisKind, FaultSpace, Point, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which engine a recovery target drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// minidb with the fixed append-only WAL commit.
    MiniDbAppend,
    /// minidb with the historical whole-log-rewrite commit — the bug
    /// specimen the oracle demonstrably catches.
    MiniDbRewrite,
    /// The v2.0 document store (append-only journal).
    Docstore,
}

impl EngineKind {
    /// All engine kinds, in canonical order.
    pub const ALL: [EngineKind; 3] = [
        EngineKind::MiniDbAppend,
        EngineKind::MiniDbRewrite,
        EngineKind::Docstore,
    ];

    /// The kind's spelling in target names (`vfs:<name>`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::MiniDbAppend => "minidb-recovery",
            EngineKind::MiniDbRewrite => "minidb-rewrite",
            EngineKind::Docstore => "docstore-recovery",
        }
    }

    /// Parses a kind name.
    pub fn from_name(s: &str) -> Option<EngineKind> {
        EngineKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// The substring identifying the engine's commit log in replay-log
    /// paths (fsyncs of other files do not acknowledge durability).
    fn log_path_marker(self) -> &'static str {
        match self {
            EngineKind::MiniDbAppend | EngineKind::MiniDbRewrite => "wal.log",
            EngineKind::Docstore => "journal",
        }
    }
}

/// One logical workload statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    /// Insert (or overwrite) a row. The docstore ignores the table.
    Insert(&'static str, u64, &'static str),
    /// Delete a row (minidb only).
    Delete(&'static str, u64),
    /// Checkpoint: flush tables (minidb) or save the data file
    /// (docstore). State-neutral — recovery rebuilds from the log alone —
    /// but it exercises the create/write/fsync/rename surface.
    Checkpoint,
}

/// The observed fate of one statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    /// The statement returned success; `fsynced` is whether a real fsync
    /// of the commit log happened during it.
    Acked { fsynced: bool },
    /// The statement returned an error or aborted the server.
    Failed,
}

/// Number of workloads per engine (the `testID` axis).
pub const NUM_WORKLOADS: usize = 6;

fn workload(kind: EngineKind, test_id: usize) -> Vec<Step> {
    use Step::{Checkpoint, Delete, Insert};
    match kind {
        EngineKind::MiniDbAppend | EngineKind::MiniDbRewrite => match test_id {
            0 => vec![Insert("t", 1, "alpha")],
            1 => vec![
                Insert("t", 1, "alpha"),
                Insert("t", 2, "beta"),
                Insert("t", 3, "gamma"),
            ],
            2 => vec![Insert("t", 1, "alpha"), Delete("t", 1)],
            3 => vec![
                Insert("t", 1, "alpha"),
                Insert("u", 10, "ten"),
                Insert("t", 2, "beta"),
            ],
            4 => vec![Insert("t", 1, "old"), Insert("t", 1, "new")],
            _ => vec![Insert("t", 1, "alpha"), Checkpoint, Insert("t", 2, "beta")],
        },
        EngineKind::Docstore => match test_id {
            0 => vec![Insert("docs", 1, "alpha")],
            1 => vec![
                Insert("docs", 1, "alpha"),
                Insert("docs", 2, "beta"),
                Insert("docs", 3, "gamma"),
            ],
            2 => vec![Insert("docs", 1, "old"), Insert("docs", 1, "new")],
            3 => vec![
                Insert("docs", 1, "alpha"),
                Checkpoint,
                Insert("docs", 2, "beta"),
            ],
            4 => vec![
                Insert("docs", 1, "a-long-document-payload-with-many-bytes"),
                Insert("docs", 2, "beta"),
            ],
            _ => vec![
                Insert("docs", 4, "delta"),
                Insert("docs", 5, "epsilon"),
                Insert("docs", 6, "zeta"),
                Insert("docs", 7, "eta"),
            ],
        },
    }
}

/// Recovered database state: table → (key → value). The docstore maps to
/// a single `"docs"` table.
type DbState = BTreeMap<String, BTreeMap<u64, String>>;

/// Classifies one bracketed statement result, marking the server dead on
/// a panic (the process aborted; later statements cannot run).
fn fate_of<E>(
    result: Result<Result<(), E>, String>,
    window: &[crate::vfs_fault::LogEntry],
    marker: &str,
    server_dead: &mut bool,
) -> Fate {
    match result {
        Ok(Ok(())) => Fate::Acked {
            fsynced: window
                .iter()
                .any(|e| e.op == VfsOp::Fsync && e.path.contains(marker) && e.decision == Decision::Ok),
        },
        Ok(Err(_)) => Fate::Failed,
        Err(_) => {
            *server_dead = true;
            Fate::Failed
        }
    }
}

/// Runs the workload phase against a live minidb, returning per-statement
/// fates (stopping early if the server aborts).
fn drive_minidb(
    env: &LibcEnv,
    vfs: &Vfs,
    mode: WalMode,
    steps: &[Step],
    marker: &str,
) -> Vec<(Step, Fate)> {
    let mut fates = Vec::new();
    let mut dead = false;
    let boot = catch_crash(|| MiniDb::start_with(env, vfs, mode));
    let db = match boot {
        Ok(Ok(db)) => db,
        // A failed or crashed boot ran no statements: nothing was acked.
        _ => return fates,
    };
    // Create the workload's tables (bracketed like statements: a create
    // can fail gracefully — later inserts then fail too — or abort via
    // the double-unlock bug; either way it is state-neutral, since
    // recovery rebuilds tables from the log).
    let mut tables: Vec<&str> = Vec::new();
    for s in steps {
        if let Step::Insert(t, _, _) | Step::Delete(t, _) = s {
            if !tables.contains(t) {
                tables.push(t);
            }
        }
    }
    for t in tables {
        match catch_crash(|| db.create_table(env, vfs, t)) {
            Ok(_) => {}
            Err(_) => return fates, // Aborted (e.g. double unlock): dead.
        }
    }
    for step in steps {
        if dead {
            break;
        }
        let mark = vfs.replay_log().len();
        let result = match *step {
            Step::Insert(t, k, v) => catch_crash(|| db.insert(env, vfs, t, k, v)),
            Step::Delete(t, k) => catch_crash(|| db.delete(env, vfs, t, k).map(|_| ())),
            Step::Checkpoint => catch_crash(|| db.checkpoint(env, vfs)),
        };
        let log = vfs.replay_log();
        let fate = fate_of(result, &log[mark.min(log.len())..], marker, &mut dead);
        fates.push((*step, fate));
    }
    fates
}

/// Runs the workload phase against a live docstore.
fn drive_docstore(env: &LibcEnv, vfs: &Vfs, steps: &[Step], marker: &str) -> Vec<(Step, Fate)> {
    let mut fates = Vec::new();
    let mut dead = false;
    let boot = catch_crash(|| DocStore::start(env, vfs, Version::V2_0));
    let store = match boot {
        Ok(Ok(s)) => s,
        _ => return fates,
    };
    for step in steps {
        if dead {
            break;
        }
        let mark = vfs.replay_log().len();
        let result = match *step {
            Step::Insert(_, k, v) => catch_crash(|| store.insert(env, vfs, k, v)),
            Step::Delete(..) => continue, // Not part of docstore workloads.
            Step::Checkpoint => catch_crash(|| store.save(env, vfs)),
        };
        let log = vfs.replay_log();
        let fate = fate_of(result, &log[mark.min(log.len())..], marker, &mut dead);
        fates.push((*step, fate));
    }
    fates
}

/// Reopens the engine fault-free and dumps its state.
fn reopen(kind: EngineKind, env: &LibcEnv, vfs: &Vfs) -> Result<DbState, String> {
    match kind {
        EngineKind::MiniDbAppend | EngineKind::MiniDbRewrite => {
            match catch_crash(|| MiniDb::start(env, vfs).map(|db| db.dump())) {
                Ok(Ok(state)) => Ok(state),
                Ok(Err(e)) => Err(format!("reopen failed: {e:?}")),
                Err(msg) => Err(format!("reopen crashed: {msg}")),
            }
        }
        EngineKind::Docstore => {
            match catch_crash(|| DocStore::start(env, vfs, Version::V2_0).map(|s| s.dump())) {
                Ok(Ok(docs)) => {
                    let mut state = DbState::new();
                    if !docs.is_empty() {
                        state.insert("docs".to_owned(), docs);
                    }
                    Ok(state)
                }
                Ok(Err(e)) => Err(format!("reopen failed: {e:?}")),
                Err(msg) => Err(format!("reopen crashed: {msg}")),
            }
        }
    }
}

/// Applies the first `cut` statements, including failed ones selected by
/// `mask` (bit *i* of the mask selects the *i*-th failed statement in the
/// prefix).
fn apply_history(ops: &[(Step, Fate)], cut: usize, mask: u32) -> DbState {
    let mut state = DbState::new();
    let mut failed_seen = 0u32;
    for (step, fate) in &ops[..cut] {
        let include = match fate {
            Fate::Acked { .. } => true,
            Fate::Failed => {
                let inc = (mask >> failed_seen) & 1 == 1;
                failed_seen += 1;
                inc
            }
        };
        if !include {
            continue;
        }
        match *step {
            Step::Insert(t, k, v) => {
                state.entry(t.to_owned()).or_default().insert(k, v.to_owned());
            }
            Step::Delete(t, k) => {
                // Replay keeps the (now possibly empty) table entry, as
                // the engine does after applying a delete record.
                if let Some(rows) = state.get_mut(t) {
                    rows.remove(&k);
                }
            }
            Step::Checkpoint => {}
        }
    }
    state
}

/// Every state a correct engine may legitimately recover to.
fn valid_states(ops: &[(Step, Fate)]) -> Vec<DbState> {
    let min_cut = ops
        .iter()
        .rposition(|(_, f)| matches!(f, Fate::Acked { fsynced: true }))
        .map_or(0, |i| i + 1);
    let mut states = Vec::new();
    for cut in min_cut..=ops.len() {
        let failed = ops[..cut]
            .iter()
            .filter(|(_, f)| matches!(f, Fate::Failed))
            .count() as u32;
        for mask in 0..(1u32 << failed) {
            let s = apply_history(ops, cut, mask);
            if !states.contains(&s) {
                states.push(s);
            }
        }
    }
    states
}

/// Names the violation: rows present in *every* valid state but missing
/// from the recovered one mean committed data was lost; anything else is
/// an inconsistent recovered state (phantom or reordered history).
fn diagnose(recovered: &DbState, valid: &[DbState]) -> &'static str {
    let row_set = |s: &DbState| -> Vec<(String, u64, String)> {
        s.iter()
            .flat_map(|(t, rows)| {
                rows.iter()
                    .map(move |(k, v)| (t.clone(), *k, v.clone()))
            })
            .collect()
    };
    let recovered_rows = row_set(recovered);
    let mut must_have: Option<Vec<_>> = None;
    for v in valid {
        let rows = row_set(v);
        must_have = Some(match must_have {
            None => rows,
            Some(acc) => acc.into_iter().filter(|r| rows.contains(r)).collect(),
        });
    }
    if must_have
        .unwrap_or_default()
        .iter()
        .any(|r| !recovered_rows.contains(r))
    {
        "committed rows lost after crash"
    } else {
        "recovered state inconsistent with acknowledged history"
    }
}

/// Runs one crash-recovery test: workload under `rule`, crash, fault-free
/// reopen, invariant check, idempotency check. Returns the outcome plus
/// the canonical rendered replay log (the determinism witness).
pub fn run_recovery_test_logged(
    kind: EngineKind,
    test_id: usize,
    rule: Option<FaultRule>,
) -> (TestOutcome, String) {
    let env = LibcEnv::fault_free();
    let vfs = Vfs::new();
    match kind {
        EngineKind::MiniDbAppend | EngineKind::MiniDbRewrite => MiniDb::install(&vfs),
        EngineKind::Docstore => DocStore::install(&vfs),
    }
    // Arm even with no rule: the (possibly fault-free) replay log is part
    // of the determinism contract.
    vfs.arm_rules(rule.into_iter().collect());
    let marker = kind.log_path_marker();
    let steps = workload(kind, test_id);

    // Phase A: the workload, every statement bracketed.
    let ops = match kind {
        EngineKind::MiniDbAppend => drive_minidb(&env, &vfs, WalMode::Append, &steps, marker),
        EngineKind::MiniDbRewrite => drive_minidb(&env, &vfs, WalMode::Rewrite, &steps, marker),
        EngineKind::Docstore => drive_docstore(&env, &vfs, &steps, marker),
    };

    // The crash: everything not durable is gone. Rules are cleared for
    // recovery — they model the faulty environment the workload ran in,
    // and phase B asks what a *fault-free* reopen makes of the disk.
    vfs.crash();
    vfs.clear_rules();
    let rendered = vfs.rendered_log();

    // Phase B: fault-free reopen + invariants.
    let status = match reopen(kind, &env, &vfs) {
        Err(why) => TestStatus::Crashed(format!("recovery violation: fault-free {why}")),
        Ok(recovered) => {
            let valid = valid_states(&ops);
            if !valid.contains(&recovered) {
                TestStatus::Crashed(format!("recovery violation: {}", diagnose(&recovered, &valid)))
            } else {
                // Idempotency: crash again, reopen again, same state.
                vfs.crash();
                match reopen(kind, &env, &vfs) {
                    Ok(second) if second == recovered => {
                        let clean = ops.iter().all(|(_, f)| matches!(f, Fate::Acked { .. }))
                            && ops.len() == count_driven(&steps, kind);
                        if env.injections().is_empty() || clean {
                            // No rule fired (a fault-space hole), or the
                            // fault was fully absorbed.
                            TestStatus::Passed
                        } else {
                            TestStatus::Failed
                        }
                    }
                    Ok(_) => TestStatus::Crashed(
                        "recovery violation: replay not idempotent".to_owned(),
                    ),
                    Err(why) => {
                        TestStatus::Crashed(format!("recovery violation: second {why}"))
                    }
                }
            }
        }
    };
    let outcome = TestOutcome {
        test_id,
        status,
        coverage: env.coverage(),
        injections: env.injections(),
    };
    (outcome, rendered)
}

/// How many statements phase A runs when nothing dies early.
fn count_driven(steps: &[Step], kind: EngineKind) -> usize {
    match kind {
        EngineKind::Docstore => steps
            .iter()
            .filter(|s| !matches!(s, Step::Delete(..)))
            .count(),
        _ => steps.len(),
    }
}

/// [`run_recovery_test_logged`] without the log.
pub fn run_recovery_test(kind: EngineKind, test_id: usize, rule: Option<FaultRule>) -> TestOutcome {
    run_recovery_test_logged(kind, test_id, rule).0
}

/// The fault kinds on the `fault` axis.
pub const RECOVERY_FAULTS: [&str; 5] =
    ["eio", "enospc", "short-write", "drop-fsync", "torn-rename"];

/// Highest rule timing on the `nth` axis (0 = no injection).
pub const MAX_NTH: u32 = 5;

/// A fault space over crash-recovery scenarios: `testID × op × fault ×
/// nth`. Points with `nth = 0`, or naming a (kind, op) pair that cannot
/// fire (a short write on `close`), or a timing the workload never
/// reaches, are the space's holes — exactly like unreached call numbers
/// on the classic targets. Clones are cheap (the space is shared).
#[derive(Debug, Clone)]
pub struct RecoverySpace {
    space: Arc<FaultSpace>,
    kind: EngineKind,
}

impl RecoverySpace {
    /// Builds the space for one engine kind: 6 workloads × 11 ops × 5
    /// fault kinds × 6 timings = 1,980 points.
    pub fn new(kind: EngineKind) -> Self {
        let space = FaultSpace::new(vec![
            Axis::int_range("testID", 0, NUM_WORKLOADS as i64 - 1),
            Axis::symbolic("op", VfsOp::ALL.iter().map(|o| o.name().to_owned())),
            Axis::symbolic("fault", RECOVERY_FAULTS.iter().map(|s| (*s).to_owned())),
            Axis::new(
                "nth",
                (0..=MAX_NTH as i64).map(Value::Int).collect(),
                AxisKind::Set,
            ),
        ])
        .expect("canonical axes are non-empty");
        RecoverySpace {
            space: Arc::new(space),
            kind,
        }
    }

    /// The target's canonical name, `vfs:<engine>`.
    pub fn name(&self) -> String {
        format!("vfs:{}", self.kind.name())
    }

    /// The engine kind.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The underlying fault space.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// A shared handle to the fault space.
    pub fn space_arc(&self) -> Arc<FaultSpace> {
        Arc::clone(&self.space)
    }

    /// Decodes a point into (test id, fault rule). `nth = 0` is the bare
    /// workload (no rule).
    ///
    /// # Panics
    ///
    /// Panics if the point does not address this space.
    pub fn rule_for(&self, p: &Point) -> (usize, Option<FaultRule>) {
        self.space
            .check(p)
            .expect("point must address the recovery target space");
        let test_id = p[0];
        let op = VfsOp::ALL[p[1]];
        let kind = match RECOVERY_FAULTS[p[2]] {
            "eio" => FaultKind::Error(Errno::EIO),
            "enospc" => FaultKind::Error(Errno::ENOSPC),
            "short-write" => FaultKind::ShortWrite,
            "drop-fsync" => FaultKind::DropFsync,
            _ => FaultKind::TornRename,
        };
        let nth = p[3] as u32;
        if nth == 0 {
            return (test_id, None);
        }
        (
            test_id,
            Some(FaultRule {
                op,
                path: PathMatch::Any,
                nth,
                kind,
            }),
        )
    }

    /// Executes the point's crash-recovery test.
    pub fn execute(&self, p: &Point) -> TestOutcome {
        let (test_id, rule) = self.rule_for(p);
        run_recovery_test(self.kind, test_id, rule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(test: usize, op: VfsOp, fault: usize, nth: usize) -> Point {
        let op_idx = VfsOp::ALL.iter().position(|o| *o == op).unwrap();
        Point::new(vec![test, op_idx, fault, nth])
    }

    const EIO: usize = 0;
    const SHORT: usize = 2;
    const DROP_FSYNC: usize = 3;
    const TORN_RENAME: usize = 4;

    #[test]
    fn space_shape() {
        for kind in EngineKind::ALL {
            let s = RecoverySpace::new(kind);
            assert_eq!(s.space().len(), 6 * 11 * 5 * 6);
            assert_eq!(s.space().arity(), 4);
        }
        assert_eq!(
            RecoverySpace::new(EngineKind::MiniDbAppend).name(),
            "vfs:minidb-recovery"
        );
        assert_eq!(EngineKind::from_name("docstore-recovery"), Some(EngineKind::Docstore));
        assert_eq!(EngineKind::from_name("nosuch"), None);
    }

    #[test]
    fn bare_points_pass_on_every_engine() {
        for kind in EngineKind::ALL {
            let s = RecoverySpace::new(kind);
            for test in 0..NUM_WORKLOADS {
                let o = s.execute(&point(test, VfsOp::Write, EIO, 0));
                assert_eq!(o.status, TestStatus::Passed, "{} test {test}", s.name());
                assert!(o.injections.is_empty());
            }
        }
    }

    #[test]
    fn rewrite_bug_loses_committed_rows() {
        // Workload 1 commits three inserts. Failing the WAL write of
        // commit #2 (write #5: three header writes + commit #1) hits the
        // rewrite path after its truncating create: commit #1's row is
        // durably gone. The fixed append-only engine shrugs it off.
        let p = point(1, VfsOp::Write, EIO, 5);
        let buggy = RecoverySpace::new(EngineKind::MiniDbRewrite).execute(&p);
        assert!(
            matches!(&buggy.status, TestStatus::Crashed(m) if m.contains("recovery violation")),
            "rewrite: {:?}",
            buggy.status
        );
        assert!(!buggy.injections.is_empty());
        let fixed = RecoverySpace::new(EngineKind::MiniDbAppend).execute(&p);
        assert_eq!(fixed.status, TestStatus::Failed, "append: {:?}", fixed.status);
    }

    #[test]
    fn dropped_fsync_violates_rewrite_but_not_append() {
        // The *last* commit's fsync is dropped. Rewrite: its truncating
        // create was journaled but the rewritten bytes never flushed —
        // the whole durable log is empty, losing commits #1 and #2.
        // Append: only commit #3 may be missing, which the fsynced=false
        // fate permits. (Dropping an *earlier* rewrite fsync is repaired
        // by the next commit's full rewrite — correctly Passed.)
        let p = point(1, VfsOp::Fsync, DROP_FSYNC, 3);
        let buggy = RecoverySpace::new(EngineKind::MiniDbRewrite).execute(&p);
        assert!(buggy.status.is_crash(), "rewrite: {:?}", buggy.status);
        let fixed = RecoverySpace::new(EngineKind::MiniDbAppend).execute(&p);
        assert!(!fixed.status.is_crash(), "append: {:?}", fixed.status);
    }

    #[test]
    fn short_write_is_absorbed_by_the_fixed_commit() {
        let p = point(1, VfsOp::Write, SHORT, 5);
        let fixed = RecoverySpace::new(EngineKind::MiniDbAppend).execute(&p);
        // The commit loop completes the short write: fully absorbed.
        assert_eq!(fixed.status, TestStatus::Passed, "{:?}", fixed.status);
        assert!(!fixed.injections.is_empty(), "the rule must have fired");
        let buggy = RecoverySpace::new(EngineKind::MiniDbRewrite).execute(&p);
        assert!(buggy.status.is_crash(), "rewrite tears the log: {:?}", buggy.status);
    }

    #[test]
    fn torn_checkpoint_rename_is_survivable() {
        // Workload 5 checkpoints between two inserts; tearing the MYD
        // rename must not violate recovery (the WAL is the truth).
        let p = point(5, VfsOp::Rename, TORN_RENAME, 1);
        let o = RecoverySpace::new(EngineKind::MiniDbAppend).execute(&p);
        assert!(!o.status.is_crash(), "{:?}", o.status);
        assert!(!o.injections.is_empty(), "the rename rule must fire");
    }

    #[test]
    fn workload_abort_is_failed_not_crashed() {
        // A close error during mi_create trips the double-unlock abort —
        // §7.1's abort-and-recover, not a durability violation (close #5:
        // my.cnf, errmsg, then frm/myi/myd).
        let p = point(0, VfsOp::Close, EIO, 5);
        let o = RecoverySpace::new(EngineKind::MiniDbAppend).execute(&p);
        assert_eq!(o.status, TestStatus::Failed, "{:?}", o.status);
    }

    #[test]
    fn docstore_recovery_holds_under_journal_faults() {
        let s = RecoverySpace::new(EngineKind::Docstore);
        for (op, fault, nth) in [
            (VfsOp::Write, EIO, 2),
            (VfsOp::Fsync, DROP_FSYNC, 1),
            (VfsOp::Write, SHORT, 1),
            (VfsOp::Append, EIO, 1),
        ] {
            let o = s.execute(&point(1, op, fault, nth));
            assert!(!o.status.is_crash(), "{op:?}/{fault}/{nth}: {:?}", o.status);
        }
    }

    #[test]
    fn replay_log_is_byte_identical_across_runs() {
        let rule = FaultRule {
            op: VfsOp::Fsync,
            path: PathMatch::Any,
            nth: 2,
            kind: FaultKind::DropFsync,
        };
        let (o1, log1) =
            run_recovery_test_logged(EngineKind::MiniDbAppend, 1, Some(rule.clone()));
        let (o2, log2) = run_recovery_test_logged(EngineKind::MiniDbAppend, 1, Some(rule));
        assert_eq!(log1, log2);
        assert!(!log1.is_empty());
        assert_eq!(o1.status, o2.status);
    }
}
