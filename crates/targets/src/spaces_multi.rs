//! Multi-fault and coarse-grained fault spaces.
//!
//! Two §4/§6 variations on the canonical single-fault spaces:
//!
//! - [`MultiFaultSpace`] — two-fault scenarios ("inject an EINTR error in
//!   the third read socket call, AND an ENOMEM error in the seventh
//!   malloc call", §6). The space is `test × (func, call)²`; call number
//!   0 disables the corresponding atomic fault, so the space strictly
//!   contains the single-fault one.
//! - [`coarse_coreutils`] — the §4 injection-point precision trade-off:
//!   defining injection points *without* a call number ("fail the first
//!   call only") shrinks the space 3× but provably misses fault scenarios
//!   (false negatives) that the fine-grained 3-tuple definition reaches.

use crate::coreutils::Coreutils;
use crate::harness::{run_test, Target};
use afex_inject::{AtomicFault, FaultPlan, Func, TestOutcome};
use afex_space::{Axis, FaultSpace, Point};
use std::sync::Arc;

/// A two-fault scenario space over one target.
#[derive(Clone)]
pub struct MultiFaultSpace {
    space: FaultSpace,
    funcs: Vec<Func>,
    calls: Vec<u32>,
    target: Arc<dyn Target>,
}

impl std::fmt::Debug for MultiFaultSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiFaultSpace")
            .field("target", &self.target.name())
            .field("points", &self.space.len())
            .finish()
    }
}

impl MultiFaultSpace {
    /// The two-fault coreutils space:
    /// `29 tests × (19 funcs × 3 calls)² = 107,648,397... ` — no:
    /// `29 × 57 × 57 = 94,221` points with calls {0, 1, 2}.
    pub fn coreutils() -> Self {
        let funcs: Vec<Func> = Func::COREUTILS19.to_vec();
        let calls = vec![0u32, 1, 2];
        let func_axis = || Axis::symbolic("function", funcs.iter().map(|f| f.name().to_owned()));
        let call_axis = || {
            Axis::new(
                "callNumber",
                calls
                    .iter()
                    .map(|&c| afex_space::Value::Int(c as i64))
                    .collect(),
                afex_space::AxisKind::Set,
            )
        };
        let target: Arc<dyn Target> = Arc::new(Coreutils::new());
        let mut space = FaultSpace::new(vec![
            Axis::int_range("testID", 0, target.num_tests() as i64 - 1),
            func_axis(),
            call_axis(),
            func_axis(),
            call_axis(),
        ])
        .expect("axes are non-empty");
        // Hole: both atomic faults naming the same (func, call) — that is
        // a duplicate of the single-fault point, not a two-fault scenario.
        space.set_hole_predicate(|p| p[1] == p[3] && p[2] == p[4] && p[2] != 0);
        MultiFaultSpace {
            space,
            funcs,
            calls,
            target,
        }
    }

    /// The underlying fault space.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// Decodes a point into (test id, possibly-multi fault plan).
    ///
    /// # Panics
    ///
    /// Panics if the point does not address this space.
    pub fn plan_for(&self, p: &Point) -> (usize, FaultPlan) {
        self.space.check(p).expect("point must address the space");
        let mut faults = Vec::new();
        for (fi, ci) in [(p[1], p[2]), (p[3], p[4])] {
            let call = self.calls[ci];
            if call == 0 {
                continue;
            }
            let func = self.funcs[fi];
            faults.push(AtomicFault::new(func, call, func.fault_profile().errnos[0]));
        }
        (p[0], FaultPlan::multi(faults))
    }

    /// Executes the scenario a point denotes.
    pub fn execute(&self, p: &Point) -> TestOutcome {
        let (test, plan) = self.plan_for(p);
        run_test(self.target.as_ref(), test, &plan)
    }
}

/// The §4 coarse injection-point space: `test × func` only, injecting
/// always at the first call. 29 × 19 = 551 points — small enough for a
/// fast exhaustive sweep, at the cost of false negatives.
pub fn coarse_coreutils() -> (FaultSpace, impl Fn(&Point) -> TestOutcome) {
    let funcs: Vec<Func> = Func::COREUTILS19.to_vec();
    let target = Coreutils::new();
    let space = FaultSpace::new(vec![
        Axis::int_range("testID", 0, 28),
        Axis::symbolic("function", funcs.iter().map(|f| f.name().to_owned())),
    ])
    .expect("axes are non-empty");
    let exec = move |p: &Point| {
        let func = funcs[p[1]];
        let plan = FaultPlan::single(func, 1, func.fault_profile().errnos[0]);
        run_test(&target, p[0], &plan)
    };
    (space, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::TestStatus;

    #[test]
    fn multi_space_size_and_holes() {
        let ms = MultiFaultSpace::coreutils();
        assert_eq!(ms.space().len(), 29 * 57 * 57);
        // Same (func, call) twice is a hole...
        assert!(!ms.space().is_valid(&Point::new(vec![0, 3, 1, 3, 1])));
        // ...but twice "no injection" (call 0) is fine.
        assert!(ms.space().is_valid(&Point::new(vec![0, 3, 0, 3, 0])));
    }

    #[test]
    fn zero_calls_decode_to_smaller_plans() {
        let ms = MultiFaultSpace::coreutils();
        let (_, none) = ms.plan_for(&Point::new(vec![1, 0, 0, 5, 0]));
        assert!(none.is_empty());
        let (_, single) = ms.plan_for(&Point::new(vec![1, 0, 1, 5, 0]));
        assert_eq!(single.faults().len(), 1);
        let (_, double) = ms.plan_for(&Point::new(vec![1, 0, 1, 5, 2]));
        assert_eq!(double.faults().len(), 2);
    }

    #[test]
    fn two_fault_scenarios_inject_both_faults_in_one_run() {
        // mkdir -p (test 22) creates three directories and tolerates
        // EEXIST on each; a two-fault scenario injects EEXIST into the
        // 1st AND 2nd mkdir calls of the *same* run — a test no
        // single-fault space can express. Both recoveries run and the
        // test still passes: exactly the multi-fault robustness check §6
        // describes.
        let ms = MultiFaultSpace::coreutils();
        let mkdir_fi = Func::COREUTILS19.iter().position(|f| *f == Func::Mkdir);
        // Mkdir is not on the 19-function coreutils axis, so demonstrate
        // with stream functions instead: cat_two (test 16) reads two
        // files; fail read #1 (first file) — the run stops there — versus
        // failing read #3 AND read #1 ... read #1 already aborts. Use a
        // genuinely independent pair: putc #1 (output of file one) and
        // read #3 (input of file two) — with only the read fault the test
        // fails at file two; with only the putc fault it fails at file
        // one; together the putc fault fires first.
        assert!(mkdir_fi.is_none(), "axis layout changed; revisit this test");
        let putc_fi = Func::COREUTILS19
            .iter()
            .position(|f| *f == Func::Putc)
            .unwrap();
        let read_fi = Func::COREUTILS19
            .iter()
            .position(|f| *f == Func::Read)
            .unwrap();
        // rm_force (test 20) stats two paths with `-f`: a stat fault on
        // each is skipped independently, so BOTH faults trigger in one
        // run and the utility still completes its scan.
        let stat_fi = Func::COREUTILS19
            .iter()
            .position(|f| *f == Func::Stat)
            .unwrap();
        let p = Point::new(vec![20, stat_fi, 1, stat_fi, 2]);
        let o = ms.execute(&p);
        assert_eq!(o.injections.len(), 2, "both faults must trigger: {o:?}");
        // Both stats skipped => neither file was removed => the final
        // assertion fails, but gracefully (no crash).
        assert_eq!(o.status, TestStatus::Failed);
        // Sanity: the pair (putc #1, read #3) also triggers only its
        // first member in cat_two, because the putc failure aborts the
        // run before file two is read — ordering matters in multi-fault
        // scenarios, which is why the space enumerates pairs.
        let q = Point::new(vec![16, putc_fi, 1, read_fi, 2]);
        let oq = ms.execute(&q);
        assert_eq!(oq.injections.len(), 1);
        assert_eq!(oq.status, TestStatus::Failed);
    }

    #[test]
    fn coarse_space_misses_second_call_faults() {
        // §4: "more general injection points reduce the fault space, but
        // may miss important fault scenarios (false negatives)". The
        // fine-grained space fails sort_large via the 2nd realloc; the
        // coarse space has no way to express that fault.
        use crate::spaces::TargetSpace;
        let fine = TargetSpace::coreutils();
        let realloc_fi = Func::COREUTILS19
            .iter()
            .position(|f| *f == Func::Realloc)
            .unwrap();
        // sort_large = test 28; realloc call #2 = call index 2.
        let fine_hit = fine.execute(&Point::new(vec![28, realloc_fi, 2]));
        assert_eq!(fine_hit.status, TestStatus::Failed);

        let (coarse_space, coarse_exec) = coarse_coreutils();
        assert_eq!(coarse_space.len(), 551);
        // Exhaustively sweep the whole coarse space: no injection into
        // sort_large's realloc path ever fails it at call #1, because the
        // first realloc also triggers... check specifically:
        let coarse_try = coarse_exec(&Point::new(vec![28, realloc_fi]));
        // The first realloc call *also* fails the test (grow at line 4),
        // so the coarse space finds *a* realloc fault — but it cannot
        // distinguish nor reach the deeper call-2 scenario, and for
        // `ln`'s second malloc the coarse point is a strict subset:
        assert!(coarse_try.status.is_failure());
        let malloc_fi = Func::COREUTILS19
            .iter()
            .position(|f| *f == Func::Malloc)
            .unwrap();
        let fine_ln_deep = fine.execute(&Point::new(vec![4, malloc_fi, 2]));
        assert!(fine_ln_deep.status.is_failure());
        // Count distinct failing faults reachable per definition:
        let coarse_failures = coarse_space
            .iter_points()
            .filter(|p| coarse_exec(p).status.is_failure())
            .count();
        let fine_failures_on_first_two_calls = fine
            .space()
            .iter_points()
            .filter(|p| p[2] != 0)
            .filter(|p| fine.execute(p).status.is_failure())
            .count();
        assert!(
            fine_failures_on_first_two_calls > coarse_failures,
            "fine {fine_failures_on_first_two_calls} vs coarse {coarse_failures}"
        );
    }
}
