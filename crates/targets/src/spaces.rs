//! The canonical fault spaces of §7, built from the simulated targets.
//!
//! Each space follows the paper's `<testID, functionName, callNumber>`
//! injection-point definition: axis 0 is the test id, axis 1 the libc
//! function, axis 2 the call number. Where the paper's `Xcall` includes 0
//! ("no injection", coreutils), the adapter maps it to an empty plan.
//!
//! A [`TargetSpace`] bundles the [`FaultSpace`] with the execution adapter:
//! [`TargetSpace::execute`] turns a point into a fault plan, runs the
//! corresponding test, and returns the [`TestOutcome`] the sensors report.

use crate::coreutils::Coreutils;
use crate::docstore::{DocstoreTarget, Version};
use crate::harness::{run_test, Target};
use crate::httpd::HttpdTarget;
use crate::minidb::MiniDbTarget;
use afex_inject::{FaultPlan, Func, TestOutcome};
use afex_space::{Axis, FaultSpace, Point};
use std::sync::Arc;

/// The 19-function axis of `Φ_MySQL` (minidb's libc usage).
pub const MYSQL19: [Func; 19] = [
    Func::Malloc,
    Func::Calloc,
    Func::Realloc,
    Func::Fopen,
    Func::Fclose,
    Func::Fflush,
    Func::Open,
    Func::Read,
    Func::Write,
    Func::Close,
    Func::Fsync,
    Func::Lseek,
    Func::Stat,
    Func::Unlink,
    Func::Rename,
    Func::Opendir,
    Func::Closedir,
    Func::Chdir,
    Func::Getcwd,
];

/// The 19-function axis of `Φ_Apache` (httpd's libc usage, including the
/// `strdup` the Fig. 7 bug lives in).
pub const APACHE19: [Func; 19] = [
    Func::Malloc,
    Func::Calloc,
    Func::Strdup,
    Func::Fopen,
    Func::Fgets,
    Func::Fclose,
    Func::Fflush,
    Func::Open,
    Func::Read,
    Func::Write,
    Func::Close,
    Func::Stat,
    Func::Unlink,
    Func::Socket,
    Func::Bind,
    Func::Listen,
    Func::Accept,
    Func::Recv,
    Func::Send,
];

/// The 19-function axis of `Φ_docstore`.
pub const DOCSTORE19: [Func; 19] = [
    Func::Malloc,
    Func::Calloc,
    Func::Fflush,
    Func::Open,
    Func::Read,
    Func::Write,
    Func::Close,
    Func::Fsync,
    Func::Stat,
    Func::Unlink,
    Func::Rename,
    Func::Opendir,
    Func::Getcwd,
    Func::Socket,
    Func::Bind,
    Func::Listen,
    Func::Accept,
    Func::Recv,
    Func::Send,
];

/// A fault space bound to an executable target. Clones are cheap: the
/// space and target are behind `Arc`s, so the campaign runner's per-cell
/// executor clone shares one space allocation per target.
#[derive(Clone)]
pub struct TargetSpace {
    space: Arc<FaultSpace>,
    funcs: Vec<Func>,
    calls: Vec<u32>,
    target: Arc<dyn Target>,
}

impl std::fmt::Debug for TargetSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetSpace")
            .field("target", &self.target.name())
            .field("points", &self.space.len())
            .finish()
    }
}

fn build(target: Arc<dyn Target>, funcs: &[Func], calls: Vec<u32>) -> TargetSpace {
    let space = FaultSpace::new(vec![
        Axis::int_range("testID", 0, target.num_tests() as i64 - 1),
        Axis::symbolic("function", funcs.iter().map(|f| f.name().to_owned())),
        Axis::new(
            "callNumber",
            calls
                .iter()
                .map(|&c| afex_space::Value::Int(c as i64))
                .collect(),
            afex_space::AxisKind::Set,
        ),
    ])
    .expect("canonical axes are non-empty");
    TargetSpace {
        space: Arc::new(space),
        funcs: funcs.to_vec(),
        calls,
        target,
    }
}

impl TargetSpace {
    /// `Φ_coreutils`: 29 tests × 19 functions × call numbers {0, 1, 2}
    /// = 1,653 faults (§7.2). Call number 0 means "no injection".
    pub fn coreutils() -> Self {
        build(
            Arc::new(Coreutils::new()),
            &Func::COREUTILS19,
            vec![0, 1, 2],
        )
    }

    /// `Φ_MySQL`: 1,147 tests × 19 functions × call numbers 1–100
    /// = 2,179,300 faults (§7).
    pub fn mysql() -> Self {
        build(Arc::new(MiniDbTarget::new()), &MYSQL19, (1..=100).collect())
    }

    /// `Φ_Apache`: 58 tests × 19 functions × call numbers 1–10
    /// = 11,020 faults (§7).
    pub fn apache() -> Self {
        build(Arc::new(HttpdTarget::new()), &APACHE19, (1..=10).collect())
    }

    /// `Φ_docstore`: 30 tests × 19 functions × call numbers 1–8
    /// = 4,560 faults per version (§7.6).
    pub fn docstore(version: Version) -> Self {
        build(
            Arc::new(DocstoreTarget::new(version)),
            &DOCSTORE19,
            (1..=8).collect(),
        )
    }

    /// The underlying fault space.
    pub fn space(&self) -> &FaultSpace {
        &self.space
    }

    /// A shared handle to the fault space — sessions and explorers take
    /// `impl Into<Arc<FaultSpace>>`, so this avoids cloning the space
    /// per session/cell.
    pub fn space_arc(&self) -> Arc<FaultSpace> {
        Arc::clone(&self.space)
    }

    /// The underlying target.
    pub fn target(&self) -> &dyn Target {
        self.target.as_ref()
    }

    /// The function-axis values.
    pub fn funcs(&self) -> &[Func] {
        &self.funcs
    }

    /// Decodes a point into (test id, fault plan).
    ///
    /// The injected errno is the first entry of the function's fault
    /// profile — the same "most representative errno" choice the paper's
    /// single-errno-per-function spaces make.
    ///
    /// # Panics
    ///
    /// Panics if the point does not address this space.
    pub fn plan_for(&self, p: &Point) -> (usize, FaultPlan) {
        self.space
            .check(p)
            .expect("point must address the target space");
        let test_id = p[0];
        let func = self.funcs[p[1]];
        let call = self.calls[p[2]];
        let plan = if call == 0 {
            FaultPlan::none()
        } else {
            let errno = func.fault_profile().errnos[0];
            FaultPlan::single(func, call, errno)
        };
        (test_id, plan)
    }

    /// Executes the fault-injection test a point denotes.
    pub fn execute(&self, p: &Point) -> TestOutcome {
        let (test_id, plan) = self.plan_for(p);
        run_test(self.target.as_ref(), test_id, &plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::TestStatus;

    #[test]
    fn coreutils_space_is_1653_points() {
        let ts = TargetSpace::coreutils();
        assert_eq!(ts.space().len(), 1653);
        assert_eq!(ts.space().arity(), 3);
    }

    #[test]
    fn mysql_space_is_2179300_points() {
        assert_eq!(TargetSpace::mysql().space().len(), 2_179_300);
    }

    #[test]
    fn apache_space_is_11020_points() {
        assert_eq!(TargetSpace::apache().space().len(), 11_020);
    }

    #[test]
    fn docstore_space_is_4560_points() {
        assert_eq!(TargetSpace::docstore(Version::V0_8).space().len(), 4_560);
    }

    #[test]
    fn call_zero_is_no_injection() {
        let ts = TargetSpace::coreutils();
        let (test, plan) = ts.plan_for(&Point::new(vec![5, 3, 0]));
        assert_eq!(test, 5);
        assert!(plan.is_empty());
    }

    #[test]
    fn nonzero_call_builds_single_fault_plan() {
        let ts = TargetSpace::coreutils();
        let (_, plan) = ts.plan_for(&Point::new(vec![5, 0, 2]));
        assert_eq!(plan.faults().len(), 1);
        assert_eq!(plan.faults()[0].func, Func::Malloc);
        assert_eq!(plan.faults()[0].call_number, 2);
        assert_eq!(plan.faults()[0].errno, afex_inject::Errno::ENOMEM);
    }

    #[test]
    fn execute_no_injection_passes() {
        let ts = TargetSpace::coreutils();
        for t in [0usize, 10, 28] {
            let o = ts.execute(&Point::new(vec![t, 0, 0]));
            assert_eq!(o.status, TestStatus::Passed, "test {t}");
        }
    }

    #[test]
    fn execute_malloc_fault_fails_ln_test() {
        let ts = TargetSpace::coreutils();
        // Test 4 = ln_hard, function 0 = malloc, call index 1 = call #1.
        let o = ts.execute(&Point::new(vec![4, 0, 1]));
        assert_eq!(o.status, TestStatus::Failed);
        assert!(o.triggered());
    }

    #[test]
    fn apache_strdup_point_crashes() {
        let ts = TargetSpace::apache();
        let (fi, _) = ts
            .funcs()
            .iter()
            .enumerate()
            .find(|(_, f)| **f == Func::Strdup)
            .unwrap();
        // Any test, strdup call #1.
        let o = ts.execute(&Point::new(vec![0, fi, 0]));
        assert!(o.status.is_crash(), "{:?}", o.status);
    }

    #[test]
    fn function_axes_have_19_unique_entries() {
        for set in [&MYSQL19[..], &APACHE19[..], &DOCSTORE19[..]] {
            let uniq: std::collections::HashSet<_> = set.iter().collect();
            assert_eq!(uniq.len(), 19);
        }
    }
}
