//! In-memory filesystem substrate.
//!
//! Every operation announces the corresponding libc call to the
//! [`LibcEnv`]; when the active fault plan targets that call, the operation
//! fails with the injected errno exactly as a real LFI-intercepted call
//! would. Targets therefore exercise genuine error-propagation paths while
//! the underlying state stays deterministic and in-process.

use afex_inject::{CallResult, Errno, Func, LibcEnv};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Errors surfaced by VFS operations.
///
/// [`VfsError::Injected`] carries faults coming from the injection plan;
/// [`VfsError::Logic`] marks genuine misuse (e.g. reading a handle that was
/// never opened), which indicates a bug in the *target*, not a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The operation failed because a fault was injected.
    Injected(Errno),
    /// The operation failed for a real (semantic) reason.
    Logic(Errno),
}

impl VfsError {
    /// The errno of the failure, whatever its origin.
    pub fn errno(&self) -> Errno {
        match self {
            VfsError::Injected(e) | VfsError::Logic(e) => *e,
        }
    }
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::Injected(e) => write!(f, "injected {e}"),
            VfsError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Result type of VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    offset: usize,
    writable: bool,
}

/// An in-memory filesystem with libc-call announcement.
///
/// Paths are flat strings with `/` separators; directories must exist
/// before files can be created in them (the root `/` always exists).
///
/// # Examples
///
/// ```
/// use afex_inject::LibcEnv;
/// use afex_targets::Vfs;
///
/// let env = LibcEnv::fault_free();
/// let vfs = Vfs::new();
/// let fd = vfs.create(&env, "/data.txt").unwrap();
/// vfs.write(&env, fd, b"hello").unwrap();
/// vfs.close(&env, fd).unwrap();
/// assert_eq!(vfs.read_all(&env, "/data.txt").unwrap(), b"hello");
/// ```
#[derive(Debug, Default)]
pub struct Vfs {
    state: RefCell<State>,
}

#[derive(Debug, Default)]
struct State {
    files: BTreeMap<String, Vec<u8>>,
    dirs: BTreeMap<String, ()>,
    handles: BTreeMap<u64, OpenFile>,
    next_fd: u64,
    cwd: String,
}

impl Vfs {
    /// Creates an empty filesystem with only the root directory.
    pub fn new() -> Self {
        let vfs = Vfs::default();
        {
            let mut s = vfs.state.borrow_mut();
            s.dirs.insert("/".to_owned(), ());
            s.cwd = "/".to_owned();
            s.next_fd = 3; // 0-2 are the standard descriptors.
        }
        vfs
    }

    /// Pre-populates a file without announcing libc calls (test setup).
    pub fn seed_file(&self, path: &str, contents: &[u8]) {
        let mut s = self.state.borrow_mut();
        s.files.insert(path.to_owned(), contents.to_vec());
    }

    /// Pre-creates a directory without announcing libc calls (test setup).
    pub fn seed_dir(&self, path: &str) {
        self.state.borrow_mut().dirs.insert(path.to_owned(), ());
    }

    fn parent_of(path: &str) -> &str {
        match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => "/",
        }
    }

    /// Opens an existing file for reading (`open`).
    pub fn open(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if !s.files.contains_key(path) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: false,
            },
        );
        Ok(fd)
    }

    /// Creates (or truncates) a file for writing (`open` with `O_CREAT`).
    pub fn create(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let parent = Self::parent_of(path).to_owned();
        if !s.dirs.contains_key(&parent) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        s.files.insert(path.to_owned(), Vec::new());
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: true,
            },
        );
        Ok(fd)
    }

    /// Reads up to `len` bytes from an open handle (`read`).
    pub fn read(&self, env: &LibcEnv, fd: u64, len: usize) -> VfsResult<Vec<u8>> {
        if let CallResult::Fail(e) = env.call(Func::Read) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let h = s.handles.get(&fd).cloned();
        let Some(h) = h else {
            return Err(VfsError::Logic(Errno::EBADF));
        };
        let data = s.files.get(&h.path).cloned().unwrap_or_default();
        let end = (h.offset + len).min(data.len());
        let chunk = data[h.offset.min(data.len())..end].to_vec();
        if let Some(hm) = s.handles.get_mut(&fd) {
            hm.offset = end;
        }
        Ok(chunk)
    }

    /// Writes bytes through an open handle (`write`).
    pub fn write(&self, env: &LibcEnv, fd: u64, bytes: &[u8]) -> VfsResult<usize> {
        if let CallResult::Fail(e) = env.call(Func::Write) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let h = s.handles.get(&fd).cloned();
        let Some(h) = h else {
            return Err(VfsError::Logic(Errno::EBADF));
        };
        if !h.writable {
            return Err(VfsError::Logic(Errno::EBADF));
        }
        let file = s.files.entry(h.path.clone()).or_default();
        let off = h.offset.min(file.len());
        file.truncate(off);
        file.extend_from_slice(bytes);
        let new_off = off + bytes.len();
        if let Some(hm) = s.handles.get_mut(&fd) {
            hm.offset = new_off;
        }
        Ok(bytes.len())
    }

    /// Flushes an open handle to "disk" (`fsync`).
    pub fn fsync(&self, env: &LibcEnv, fd: u64) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Fsync) {
            return Err(VfsError::Injected(e));
        }
        if !self.state.borrow().handles.contains_key(&fd) {
            return Err(VfsError::Logic(Errno::EBADF));
        }
        Ok(())
    }

    /// Closes an open handle (`close`).
    pub fn close(&self, env: &LibcEnv, fd: u64) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Close) {
            // Even on failure, the descriptor is gone (POSIX semantics).
            self.state.borrow_mut().handles.remove(&fd);
            return Err(VfsError::Injected(e));
        }
        if self.state.borrow_mut().handles.remove(&fd).is_none() {
            return Err(VfsError::Logic(Errno::EBADF));
        }
        Ok(())
    }

    /// Stats a path (`stat`): returns the file size, or directory marker.
    pub fn stat(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Stat) {
            return Err(VfsError::Injected(e));
        }
        let s = self.state.borrow();
        if let Some(f) = s.files.get(path) {
            Ok(f.len() as u64)
        } else if s.dirs.contains_key(path) {
            Ok(0)
        } else {
            Err(VfsError::Logic(Errno::ENOENT))
        }
    }

    /// Removes a file (`unlink`).
    pub fn unlink(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Unlink) {
            return Err(VfsError::Injected(e));
        }
        if self.state.borrow_mut().files.remove(path).is_none() {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        Ok(())
    }

    /// Renames a file (`rename`).
    pub fn rename(&self, env: &LibcEnv, from: &str, to: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Rename) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let Some(data) = s.files.remove(from) else {
            return Err(VfsError::Logic(Errno::ENOENT));
        };
        s.files.insert(to.to_owned(), data);
        Ok(())
    }

    /// Creates a directory (`mkdir`).
    pub fn mkdir(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Mkdir) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if s.dirs.contains_key(path) {
            return Err(VfsError::Logic(Errno::EEXIST));
        }
        s.dirs.insert(path.to_owned(), ());
        Ok(())
    }

    /// Lists directory entries (`opendir` + `readdir` + `closedir`).
    pub fn list_dir(&self, env: &LibcEnv, path: &str) -> VfsResult<Vec<String>> {
        if let CallResult::Fail(e) = env.call(Func::Opendir) {
            return Err(VfsError::Injected(e));
        }
        let entries = {
            let s = self.state.borrow();
            if !s.dirs.contains_key(path) {
                return Err(VfsError::Logic(Errno::ENOTDIR));
            }
            let prefix = if path == "/" {
                "/".to_owned()
            } else {
                format!("{path}/")
            };
            let mut names: Vec<String> = s
                .files
                .keys()
                .chain(s.dirs.keys())
                .filter(|p| {
                    p.starts_with(&prefix)
                        && p.len() > prefix.len()
                        && !p[prefix.len()..].contains('/')
                })
                .map(|p| p[prefix.len()..].to_owned())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        // One `readdir` per entry, like a real traversal.
        for _ in &entries {
            if let CallResult::Fail(e) = env.call(Func::Readdir) {
                let _ = env.call(Func::Closedir);
                return Err(VfsError::Injected(e));
            }
        }
        if let CallResult::Fail(e) = env.call(Func::Closedir) {
            return Err(VfsError::Injected(e));
        }
        Ok(entries)
    }

    /// Changes the working directory (`chdir`).
    pub fn chdir(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Chdir) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if !s.dirs.contains_key(path) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        s.cwd = path.to_owned();
        Ok(())
    }

    /// Returns the working directory (`getcwd`).
    pub fn getcwd(&self, env: &LibcEnv) -> VfsResult<String> {
        if let CallResult::Fail(e) = env.call(Func::Getcwd) {
            return Err(VfsError::Injected(e));
        }
        Ok(self.state.borrow().cwd.clone())
    }

    /// Convenience: reads a whole file via open/read/close.
    pub fn read_all(&self, env: &LibcEnv, path: &str) -> VfsResult<Vec<u8>> {
        let fd = self.open(env, path)?;
        let mut out = Vec::new();
        loop {
            let chunk = match self.read(env, fd, 4096) {
                Ok(c) => c,
                Err(e) => {
                    let _ = self.close(env, fd);
                    return Err(e);
                }
            };
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        self.close(env, fd)?;
        Ok(out)
    }

    /// Convenience: writes a whole file via create/write/close.
    pub fn write_all(&self, env: &LibcEnv, path: &str, bytes: &[u8]) -> VfsResult<()> {
        let fd = self.create(env, path)?;
        if let Err(e) = self.write(env, fd, bytes) {
            let _ = self.close(env, fd);
            return Err(e);
        }
        self.close(env, fd)
    }

    /// Whether a file exists (no libc call — inspection for assertions).
    pub fn file_exists(&self, path: &str) -> bool {
        self.state.borrow().files.contains_key(path)
    }

    /// File contents (no libc call — inspection for assertions).
    pub fn contents(&self, path: &str) -> Option<Vec<u8>> {
        self.state.borrow().files.get(path).cloned()
    }

    /// Whether a directory exists (no libc call).
    pub fn dir_exists(&self, path: &str) -> bool {
        self.state.borrow().dirs.contains_key(path)
    }

    /// Number of open handles (leak detection in tests).
    pub fn open_handles(&self) -> usize {
        self.state.borrow().handles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::FaultPlan;

    #[test]
    fn create_write_read_roundtrip() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.write_all(&env, "/a.txt", b"abc").unwrap();
        assert_eq!(vfs.read_all(&env, "/a.txt").unwrap(), b"abc");
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn open_missing_file_is_enoent() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        assert_eq!(
            vfs.open(&env, "/nope").unwrap_err(),
            VfsError::Logic(Errno::ENOENT)
        );
    }

    #[test]
    fn create_requires_parent_dir() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        assert!(vfs.create(&env, "/no/such/file").is_err());
        vfs.seed_dir("/no");
        vfs.seed_dir("/no/such");
        assert!(vfs.create(&env, "/no/such/file").is_ok());
    }

    #[test]
    fn injected_open_failure() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EMFILE));
        let vfs = Vfs::new();
        vfs.seed_file("/x", b"1");
        assert_eq!(
            vfs.open(&env, "/x").unwrap_err(),
            VfsError::Injected(Errno::EMFILE)
        );
        // The second open succeeds: only call #1 was targeted.
        assert!(vfs.open(&env, "/x").is_ok());
    }

    #[test]
    fn injected_read_mid_stream() {
        // read_all does open(1) then reads; fail the second read call.
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 2, Errno::EIO));
        let vfs = Vfs::new();
        vfs.seed_file("/big", &vec![7u8; 5000]);
        assert_eq!(
            vfs.read_all(&env, "/big").unwrap_err(),
            VfsError::Injected(Errno::EIO)
        );
        // The handle was closed by the error path.
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn close_failure_still_releases_fd() {
        let env = LibcEnv::new(FaultPlan::single(Func::Close, 1, Errno::EINTR));
        let vfs = Vfs::new();
        vfs.seed_file("/x", b"1");
        let fd = vfs.open(&env, "/x").unwrap();
        assert!(vfs.close(&env, fd).is_err());
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn rename_and_unlink() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"data");
        vfs.rename(&env, "/a", "/b").unwrap();
        assert!(!vfs.file_exists("/a"));
        assert_eq!(vfs.contents("/b").unwrap(), b"data");
        vfs.unlink(&env, "/b").unwrap();
        assert!(!vfs.file_exists("/b"));
        assert!(vfs.unlink(&env, "/b").is_err());
    }

    #[test]
    fn list_dir_counts_readdir_calls() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        vfs.seed_file("/d/a", b"");
        vfs.seed_file("/d/b", b"");
        vfs.seed_dir("/d/sub");
        vfs.seed_file("/d/sub/deep", b""); // Not a direct child.
        let entries = vfs.list_dir(&env, "/d").unwrap();
        assert_eq!(entries, vec!["a", "b", "sub"]);
        assert_eq!(env.call_count(Func::Readdir), 3);
        assert_eq!(env.call_count(Func::Opendir), 1);
        assert_eq!(env.call_count(Func::Closedir), 1);
    }

    #[test]
    fn list_root_dir() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/top", b"");
        vfs.seed_dir("/d");
        assert_eq!(vfs.list_dir(&env, "/").unwrap(), vec!["d", "top"]);
    }

    #[test]
    fn readdir_failure_closes_dir() {
        let env = LibcEnv::new(FaultPlan::single(Func::Readdir, 1, Errno::EBADF));
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        vfs.seed_file("/d/a", b"");
        assert!(vfs.list_dir(&env, "/d").is_err());
        assert_eq!(env.call_count(Func::Closedir), 1);
    }

    #[test]
    fn chdir_and_getcwd() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/home");
        vfs.chdir(&env, "/home").unwrap();
        assert_eq!(vfs.getcwd(&env).unwrap(), "/home");
        assert!(vfs.chdir(&env, "/missing").is_err());
    }

    #[test]
    fn stat_files_and_dirs() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"12345");
        vfs.seed_dir("/d");
        assert_eq!(vfs.stat(&env, "/f").unwrap(), 5);
        assert_eq!(vfs.stat(&env, "/d").unwrap(), 0);
        assert!(vfs.stat(&env, "/x").is_err());
    }

    #[test]
    fn mkdir_semantics() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.mkdir(&env, "/new").unwrap();
        assert!(vfs.dir_exists("/new"));
        assert_eq!(
            vfs.mkdir(&env, "/new").unwrap_err(),
            VfsError::Logic(Errno::EEXIST)
        );
    }

    #[test]
    fn write_at_offset_truncates_tail() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"hello world").unwrap();
        vfs.close(&env, fd).unwrap();
        let fd2 = vfs.create(&env, "/f").unwrap(); // Truncating create.
        vfs.write(&env, fd2, b"bye").unwrap();
        vfs.close(&env, fd2).unwrap();
        assert_eq!(vfs.contents("/f").unwrap(), b"bye");
    }

    #[test]
    fn read_from_write_only_state() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"abc");
        let fd = vfs.open(&env, "/f").unwrap();
        assert!(vfs.write(&env, fd, b"x").is_err());
        vfs.close(&env, fd).unwrap();
    }

    #[test]
    fn injected_errno_is_preserved() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        let vfs = Vfs::new();
        let fd = vfs.create(&env, "/f").unwrap();
        assert_eq!(
            vfs.write(&env, fd, b"x").unwrap_err().errno(),
            Errno::ENOSPC
        );
    }
}
