//! In-memory filesystem substrate with a durability model.
//!
//! Every operation announces the corresponding libc call to the
//! [`LibcEnv`]; when the active fault plan targets that call, the operation
//! fails with the injected errno exactly as a real LFI-intercepted call
//! would. Targets therefore exercise genuine error-propagation paths while
//! the underlying state stays deterministic and in-process.
//!
//! The filesystem keeps **two namespaces**: the *visible* one (what reads
//! observe — the page cache) and the *durable* one (what survives a
//! [`Vfs::crash`] — the disk). Data writes touch only the visible copy;
//! `fsync` flushes a file's visible bytes to the durable copy; metadata
//! operations (create, unlink, rename, mkdir) are journaled and durable
//! immediately, like a journaling filesystem's namespace updates. A crash
//! discards everything not made durable.
//!
//! On top of plan-driven errno injection, a rule-driven
//! [`FaultLayer`](crate::vfs_fault::FaultLayer) can be armed on the VFS:
//! rules keyed by (op × path match × timing) inject errors, short writes,
//! dropped fsyncs and torn renames, and every operation performed while
//! armed is recorded to a replay log.

use crate::vfs_fault::{Decision, FaultLayer, FaultRule, LogEntry, VfsOp};
use afex_inject::{AtomicFault, CallResult, Errno, Func, LibcEnv};
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Errors surfaced by VFS operations.
///
/// [`VfsError::Injected`] carries faults coming from the injection plan or
/// a fired fault rule; [`VfsError::Logic`] marks genuine misuse (e.g.
/// reading a handle that was never opened), which indicates a bug in the
/// *target*, not a fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// The operation failed because a fault was injected.
    Injected(Errno),
    /// The operation failed for a real (semantic) reason.
    Logic(Errno),
}

impl VfsError {
    /// The errno of the failure, whatever its origin.
    pub fn errno(&self) -> Errno {
        match self {
            VfsError::Injected(e) | VfsError::Logic(e) => *e,
        }
    }
}

impl std::fmt::Display for VfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VfsError::Injected(e) => write!(f, "injected {e}"),
            VfsError::Logic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for VfsError {}

/// Result type of VFS operations.
pub type VfsResult<T> = Result<T, VfsError>;

#[derive(Debug, Clone)]
struct OpenFile {
    path: String,
    offset: usize,
    writable: bool,
    /// `O_APPEND`: every write lands at end-of-file regardless of offset.
    append: bool,
}

/// An in-memory filesystem with libc-call announcement, a visible/durable
/// split, and an optional rule-driven fault layer.
///
/// Paths are flat strings with `/` separators; directories must exist
/// before files can be created in them (the root `/` always exists).
///
/// # Examples
///
/// ```
/// use afex_inject::LibcEnv;
/// use afex_targets::Vfs;
///
/// let env = LibcEnv::fault_free();
/// let vfs = Vfs::new();
/// let fd = vfs.create(&env, "/data.txt").unwrap();
/// vfs.write(&env, fd, b"hello").unwrap();
/// vfs.fsync(&env, fd).unwrap();
/// vfs.close(&env, fd).unwrap();
/// vfs.crash(); // Only fsynced bytes survive.
/// assert_eq!(vfs.read_all(&env, "/data.txt").unwrap(), b"hello");
/// ```
#[derive(Debug, Default)]
pub struct Vfs {
    state: RefCell<State>,
    fault: RefCell<FaultLayer>,
}

#[derive(Debug, Default)]
struct State {
    /// Visible namespace: what reads observe (the page cache).
    files: BTreeMap<String, Vec<u8>>,
    /// Durable namespace: what survives a crash (the disk).
    disk: BTreeMap<String, Vec<u8>>,
    /// Directories are journaled metadata: durable as soon as created.
    dirs: BTreeMap<String, ()>,
    handles: BTreeMap<u64, OpenFile>,
    next_fd: u64,
    cwd: String,
}

impl Vfs {
    /// Creates an empty filesystem with only the root directory.
    pub fn new() -> Self {
        let vfs = Vfs::default();
        {
            let mut s = vfs.state.borrow_mut();
            s.dirs.insert("/".to_owned(), ());
            s.cwd = "/".to_owned();
            s.next_fd = 3; // 0-2 are the standard descriptors.
        }
        vfs
    }

    /// Pre-populates a file without announcing libc calls (test setup).
    /// Seeded files are durable: they were on disk before the run.
    pub fn seed_file(&self, path: &str, contents: &[u8]) {
        let mut s = self.state.borrow_mut();
        s.files.insert(path.to_owned(), contents.to_vec());
        s.disk.insert(path.to_owned(), contents.to_vec());
    }

    /// Pre-creates a directory without announcing libc calls (test setup).
    pub fn seed_dir(&self, path: &str) {
        self.state.borrow_mut().dirs.insert(path.to_owned(), ());
    }

    fn parent_of(path: &str) -> &str {
        match path.rfind('/') {
            Some(0) => "/",
            Some(i) => &path[..i],
            None => "/",
        }
    }

    /// Consults the fault layer for one operation, recording a fired rule
    /// as an injection (with the current stack trace) against the libc
    /// function the op announced.
    fn decide(&self, env: &LibcEnv, op: VfsOp, path: &str, requested: usize) -> Decision {
        let d = self.fault.borrow_mut().decide(op, path, requested);
        if d != Decision::Ok {
            let errno = match d {
                Decision::Error(e) => e,
                _ => Errno::EIO,
            };
            let func = op.func();
            env.record_injection(AtomicFault::new(func, env.call_count(func), errno));
        }
        d
    }

    // ---- Fault-layer control -------------------------------------------

    /// Arms the rule-driven fault layer, clearing any previous replay log.
    /// An empty rule set still enables replay logging.
    pub fn arm_rules(&self, rules: Vec<FaultRule>) {
        self.fault.borrow_mut().arm(rules);
    }

    /// Disarms the fault layer; the replay log is retained for inspection.
    pub fn clear_rules(&self) {
        self.fault.borrow_mut().disarm();
    }

    /// The replay log collected since the last arming.
    pub fn replay_log(&self) -> Vec<LogEntry> {
        self.fault.borrow().log().to_vec()
    }

    /// The replay log rendered one canonical line per entry.
    pub fn rendered_log(&self) -> String {
        self.fault.borrow().rendered()
    }

    // ---- Crash ----------------------------------------------------------

    /// Simulates a machine crash: the visible namespace is reset to the
    /// durable one, all handles vanish with the process, and descriptor
    /// numbering restarts. Armed rules survive (they model the
    /// environment, not the process); disarm explicitly for a fault-free
    /// recovery phase.
    pub fn crash(&self) {
        let mut s = self.state.borrow_mut();
        s.files = s.disk.clone();
        s.handles.clear();
        s.next_fd = 3;
        s.cwd = "/".to_owned();
    }

    // ---- Operations -----------------------------------------------------

    /// Opens an existing file for reading (`open`).
    pub fn open(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Open, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if !s.files.contains_key(path) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: false,
                append: false,
            },
        );
        Ok(fd)
    }

    /// Opens an existing file for reading and in-place writing
    /// (`open(O_RDWR)`): no truncation, offset starts at 0.
    pub fn open_rw(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Open, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if !s.files.contains_key(path) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: true,
                append: false,
            },
        );
        Ok(fd)
    }

    /// Creates (or truncates) a file for writing (`open` with
    /// `O_CREAT|O_TRUNC`). Truncation is a journaled metadata operation:
    /// it applies to the durable namespace immediately, so a crash right
    /// after a truncating create finds the file empty — the old durable
    /// bytes are gone.
    pub fn create(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Create, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let parent = Self::parent_of(path).to_owned();
        if !s.dirs.contains_key(&parent) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        s.files.insert(path.to_owned(), Vec::new());
        s.disk.insert(path.to_owned(), Vec::new());
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: true,
                append: false,
            },
        );
        Ok(fd)
    }

    /// Opens a file for appending, creating it if missing (`open` with
    /// `O_CREAT|O_APPEND`). Never truncates; every write lands at
    /// end-of-file.
    pub fn open_append(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Open) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Append, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let parent = Self::parent_of(path).to_owned();
        if !s.dirs.contains_key(&parent) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        if !s.files.contains_key(path) {
            // Creation is journaled metadata: the (empty) file is durable.
            s.files.insert(path.to_owned(), Vec::new());
            s.disk.insert(path.to_owned(), Vec::new());
        }
        let fd = s.next_fd;
        s.next_fd += 1;
        s.handles.insert(
            fd,
            OpenFile {
                path: path.to_owned(),
                offset: 0,
                writable: true,
                append: true,
            },
        );
        Ok(fd)
    }

    /// Reads up to `len` bytes from an open handle (`read`).
    pub fn read(&self, env: &LibcEnv, fd: u64, len: usize) -> VfsResult<Vec<u8>> {
        if let CallResult::Fail(e) = env.call(Func::Read) {
            return Err(VfsError::Injected(e));
        }
        let h = {
            let s = self.state.borrow();
            let Some(h) = s.handles.get(&fd).cloned() else {
                return Err(VfsError::Logic(Errno::EBADF));
            };
            h
        };
        if let Decision::Error(e) = self.decide(env, VfsOp::Read, &h.path, len) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let data = s.files.get(&h.path).cloned().unwrap_or_default();
        let end = (h.offset + len).min(data.len());
        let chunk = data[h.offset.min(data.len())..end].to_vec();
        if let Some(hm) = s.handles.get_mut(&fd) {
            hm.offset = end;
        }
        Ok(chunk)
    }

    /// Writes bytes through an open handle (`write`), overwriting in
    /// place at the handle's offset (POSIX positional-write semantics) and
    /// extending the file as needed; append handles always write at
    /// end-of-file. Returns the number of bytes written, which a fired
    /// short-write rule makes *less than* `bytes.len()` — callers that
    /// ignore the count silently tear their data.
    ///
    /// Written bytes are dirty: they live in the visible namespace only
    /// until an `fsync` flushes them.
    pub fn write(&self, env: &LibcEnv, fd: u64, bytes: &[u8]) -> VfsResult<usize> {
        if let CallResult::Fail(e) = env.call(Func::Write) {
            return Err(VfsError::Injected(e));
        }
        let h = {
            let s = self.state.borrow();
            let Some(h) = s.handles.get(&fd).cloned() else {
                return Err(VfsError::Logic(Errno::EBADF));
            };
            h
        };
        if !h.writable {
            return Err(VfsError::Logic(Errno::EBADF));
        }
        let n = match self.decide(env, VfsOp::Write, &h.path, bytes.len()) {
            Decision::Error(e) => return Err(VfsError::Injected(e)),
            Decision::Short => bytes.len() / 2,
            _ => bytes.len(),
        };
        let mut s = self.state.borrow_mut();
        let file = s.files.entry(h.path.clone()).or_default();
        let off = if h.append {
            file.len()
        } else {
            h.offset.min(file.len())
        };
        if file.len() < off + n {
            file.resize(off + n, 0);
        }
        file[off..off + n].copy_from_slice(&bytes[..n]);
        let new_off = off + n;
        if let Some(hm) = s.handles.get_mut(&fd) {
            hm.offset = new_off;
        }
        Ok(n)
    }

    /// Flushes an open handle to disk (`fsync`): the file's visible bytes
    /// become durable. A fired drop-fsync rule reports success while
    /// flushing nothing — the lying-disk scenario.
    pub fn fsync(&self, env: &LibcEnv, fd: u64) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Fsync) {
            return Err(VfsError::Injected(e));
        }
        let h = {
            let s = self.state.borrow();
            let Some(h) = s.handles.get(&fd).cloned() else {
                return Err(VfsError::Logic(Errno::EBADF));
            };
            h
        };
        let len = self
            .state
            .borrow()
            .files
            .get(&h.path)
            .map_or(0, Vec::len);
        match self.decide(env, VfsOp::Fsync, &h.path, len) {
            Decision::Error(e) => Err(VfsError::Injected(e)),
            Decision::DroppedFsync => Ok(()),
            _ => {
                let mut s = self.state.borrow_mut();
                if let Some(data) = s.files.get(&h.path).cloned() {
                    s.disk.insert(h.path.clone(), data);
                }
                Ok(())
            }
        }
    }

    /// Closes an open handle (`close`).
    pub fn close(&self, env: &LibcEnv, fd: u64) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Close) {
            // Even on failure, the descriptor is gone (POSIX semantics).
            self.state.borrow_mut().handles.remove(&fd);
            return Err(VfsError::Injected(e));
        }
        let path = {
            let s = self.state.borrow();
            s.handles.get(&fd).map(|h| h.path.clone())
        };
        let Some(path) = path else {
            return Err(VfsError::Logic(Errno::EBADF));
        };
        if let Decision::Error(e) = self.decide(env, VfsOp::Close, &path, 0) {
            self.state.borrow_mut().handles.remove(&fd);
            return Err(VfsError::Injected(e));
        }
        self.state.borrow_mut().handles.remove(&fd);
        Ok(())
    }

    /// Stats a path (`stat`): returns the file size, or directory marker.
    pub fn stat(&self, env: &LibcEnv, path: &str) -> VfsResult<u64> {
        if let CallResult::Fail(e) = env.call(Func::Stat) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Stat, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let s = self.state.borrow();
        if let Some(f) = s.files.get(path) {
            Ok(f.len() as u64)
        } else if s.dirs.contains_key(path) {
            Ok(0)
        } else {
            Err(VfsError::Logic(Errno::ENOENT))
        }
    }

    /// Removes a file (`unlink`). Journaled metadata: durable immediately.
    pub fn unlink(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Unlink) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Unlink, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if s.files.remove(path).is_none() {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        s.disk.remove(path);
        Ok(())
    }

    /// Renames a file (`rename`). Journaled metadata: both namespaces
    /// move atomically — unless a torn-rename rule fires, in which case
    /// only the visible namespace moves and the durable one keeps the old
    /// name (a crash resurrects it).
    pub fn rename(&self, env: &LibcEnv, from: &str, to: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Rename) {
            return Err(VfsError::Injected(e));
        }
        let decision = self.decide(env, VfsOp::Rename, from, 0);
        if let Decision::Error(e) = decision {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        let Some(data) = s.files.remove(from) else {
            return Err(VfsError::Logic(Errno::ENOENT));
        };
        s.files.insert(to.to_owned(), data);
        if decision != Decision::Torn {
            if let Some(durable) = s.disk.remove(from) {
                s.disk.insert(to.to_owned(), durable);
            } else {
                // The source was never synced: the destination name now
                // denotes an un-flushed inode, so any old durable bytes
                // under that name are gone.
                s.disk.remove(to);
            }
        }
        Ok(())
    }

    /// Creates a directory (`mkdir`). Journaled metadata: durable
    /// immediately.
    pub fn mkdir(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Mkdir) {
            return Err(VfsError::Injected(e));
        }
        if let Decision::Error(e) = self.decide(env, VfsOp::Mkdir, path, 0) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if s.dirs.contains_key(path) {
            return Err(VfsError::Logic(Errno::EEXIST));
        }
        s.dirs.insert(path.to_owned(), ());
        Ok(())
    }

    /// Lists directory entries (`opendir` + `readdir` + `closedir`).
    pub fn list_dir(&self, env: &LibcEnv, path: &str) -> VfsResult<Vec<String>> {
        if let CallResult::Fail(e) = env.call(Func::Opendir) {
            return Err(VfsError::Injected(e));
        }
        let entries = {
            let s = self.state.borrow();
            if !s.dirs.contains_key(path) {
                return Err(VfsError::Logic(Errno::ENOTDIR));
            }
            let prefix = if path == "/" {
                "/".to_owned()
            } else {
                format!("{path}/")
            };
            let mut names: Vec<String> = s
                .files
                .keys()
                .chain(s.dirs.keys())
                .filter(|p| {
                    p.starts_with(&prefix)
                        && p.len() > prefix.len()
                        && !p[prefix.len()..].contains('/')
                })
                .map(|p| p[prefix.len()..].to_owned())
                .collect();
            names.sort();
            names.dedup();
            names
        };
        // One `readdir` per entry, like a real traversal.
        for _ in &entries {
            if let CallResult::Fail(e) = env.call(Func::Readdir) {
                let _ = env.call(Func::Closedir);
                return Err(VfsError::Injected(e));
            }
        }
        if let CallResult::Fail(e) = env.call(Func::Closedir) {
            return Err(VfsError::Injected(e));
        }
        Ok(entries)
    }

    /// Changes the working directory (`chdir`).
    pub fn chdir(&self, env: &LibcEnv, path: &str) -> VfsResult<()> {
        if let CallResult::Fail(e) = env.call(Func::Chdir) {
            return Err(VfsError::Injected(e));
        }
        let mut s = self.state.borrow_mut();
        if !s.dirs.contains_key(path) {
            return Err(VfsError::Logic(Errno::ENOENT));
        }
        s.cwd = path.to_owned();
        Ok(())
    }

    /// Returns the working directory (`getcwd`).
    pub fn getcwd(&self, env: &LibcEnv) -> VfsResult<String> {
        if let CallResult::Fail(e) = env.call(Func::Getcwd) {
            return Err(VfsError::Injected(e));
        }
        Ok(self.state.borrow().cwd.clone())
    }

    /// Convenience: reads a whole file via open/read/close.
    pub fn read_all(&self, env: &LibcEnv, path: &str) -> VfsResult<Vec<u8>> {
        let fd = self.open(env, path)?;
        let mut out = Vec::new();
        loop {
            let chunk = match self.read(env, fd, 4096) {
                Ok(c) => c,
                Err(e) => {
                    let _ = self.close(env, fd);
                    return Err(e);
                }
            };
            if chunk.is_empty() {
                break;
            }
            out.extend_from_slice(&chunk);
        }
        self.close(env, fd)?;
        Ok(out)
    }

    /// Convenience: writes a whole file via create/write/close.
    pub fn write_all(&self, env: &LibcEnv, path: &str, bytes: &[u8]) -> VfsResult<()> {
        let fd = self.create(env, path)?;
        if let Err(e) = self.write(env, fd, bytes) {
            let _ = self.close(env, fd);
            return Err(e);
        }
        self.close(env, fd)
    }

    /// Whether a file exists (no libc call — inspection for assertions).
    pub fn file_exists(&self, path: &str) -> bool {
        self.state.borrow().files.contains_key(path)
    }

    /// File contents (no libc call — inspection for assertions).
    pub fn contents(&self, path: &str) -> Option<Vec<u8>> {
        self.state.borrow().files.get(path).cloned()
    }

    /// Whether a file exists in the durable namespace (no libc call).
    pub fn durable_file_exists(&self, path: &str) -> bool {
        self.state.borrow().disk.contains_key(path)
    }

    /// Durable file contents — what a crash would preserve (no libc call).
    pub fn durable_contents(&self, path: &str) -> Option<Vec<u8>> {
        self.state.borrow().disk.get(path).cloned()
    }

    /// Whether a directory exists (no libc call).
    pub fn dir_exists(&self, path: &str) -> bool {
        self.state.borrow().dirs.contains_key(path)
    }

    /// Number of open handles (leak detection in tests).
    pub fn open_handles(&self) -> usize {
        self.state.borrow().handles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs_fault::{FaultKind, PathMatch};
    use afex_inject::FaultPlan;

    fn rule(op: VfsOp, nth: u32, kind: FaultKind) -> FaultRule {
        FaultRule {
            op,
            path: PathMatch::Any,
            nth,
            kind,
        }
    }

    #[test]
    fn create_write_read_roundtrip() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.write_all(&env, "/a.txt", b"abc").unwrap();
        assert_eq!(vfs.read_all(&env, "/a.txt").unwrap(), b"abc");
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn open_missing_file_is_enoent() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        assert_eq!(
            vfs.open(&env, "/nope").unwrap_err(),
            VfsError::Logic(Errno::ENOENT)
        );
    }

    #[test]
    fn create_requires_parent_dir() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        assert!(vfs.create(&env, "/no/such/file").is_err());
        vfs.seed_dir("/no");
        vfs.seed_dir("/no/such");
        assert!(vfs.create(&env, "/no/such/file").is_ok());
    }

    #[test]
    fn injected_open_failure() {
        let env = LibcEnv::new(FaultPlan::single(Func::Open, 1, Errno::EMFILE));
        let vfs = Vfs::new();
        vfs.seed_file("/x", b"1");
        assert_eq!(
            vfs.open(&env, "/x").unwrap_err(),
            VfsError::Injected(Errno::EMFILE)
        );
        // The second open succeeds: only call #1 was targeted.
        assert!(vfs.open(&env, "/x").is_ok());
    }

    #[test]
    fn injected_read_mid_stream() {
        // read_all does open(1) then reads; fail the second read call.
        let env = LibcEnv::new(FaultPlan::single(Func::Read, 2, Errno::EIO));
        let vfs = Vfs::new();
        vfs.seed_file("/big", &vec![7u8; 5000]);
        assert_eq!(
            vfs.read_all(&env, "/big").unwrap_err(),
            VfsError::Injected(Errno::EIO)
        );
        // The handle was closed by the error path.
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn close_failure_still_releases_fd() {
        let env = LibcEnv::new(FaultPlan::single(Func::Close, 1, Errno::EINTR));
        let vfs = Vfs::new();
        vfs.seed_file("/x", b"1");
        let fd = vfs.open(&env, "/x").unwrap();
        assert!(vfs.close(&env, fd).is_err());
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn rename_and_unlink() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"data");
        vfs.rename(&env, "/a", "/b").unwrap();
        assert!(!vfs.file_exists("/a"));
        assert_eq!(vfs.contents("/b").unwrap(), b"data");
        vfs.unlink(&env, "/b").unwrap();
        assert!(!vfs.file_exists("/b"));
        assert!(vfs.unlink(&env, "/b").is_err());
    }

    #[test]
    fn list_dir_counts_readdir_calls() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        vfs.seed_file("/d/a", b"");
        vfs.seed_file("/d/b", b"");
        vfs.seed_dir("/d/sub");
        vfs.seed_file("/d/sub/deep", b""); // Not a direct child.
        let entries = vfs.list_dir(&env, "/d").unwrap();
        assert_eq!(entries, vec!["a", "b", "sub"]);
        assert_eq!(env.call_count(Func::Readdir), 3);
        assert_eq!(env.call_count(Func::Opendir), 1);
        assert_eq!(env.call_count(Func::Closedir), 1);
    }

    #[test]
    fn list_root_dir() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/top", b"");
        vfs.seed_dir("/d");
        assert_eq!(vfs.list_dir(&env, "/").unwrap(), vec!["d", "top"]);
    }

    #[test]
    fn readdir_failure_closes_dir() {
        let env = LibcEnv::new(FaultPlan::single(Func::Readdir, 1, Errno::EBADF));
        let vfs = Vfs::new();
        vfs.seed_dir("/d");
        vfs.seed_file("/d/a", b"");
        assert!(vfs.list_dir(&env, "/d").is_err());
        assert_eq!(env.call_count(Func::Closedir), 1);
    }

    #[test]
    fn chdir_and_getcwd() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_dir("/home");
        vfs.chdir(&env, "/home").unwrap();
        assert_eq!(vfs.getcwd(&env).unwrap(), "/home");
        assert!(vfs.chdir(&env, "/missing").is_err());
    }

    #[test]
    fn stat_files_and_dirs() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"12345");
        vfs.seed_dir("/d");
        assert_eq!(vfs.stat(&env, "/f").unwrap(), 5);
        assert_eq!(vfs.stat(&env, "/d").unwrap(), 0);
        assert!(vfs.stat(&env, "/x").is_err());
    }

    #[test]
    fn mkdir_semantics() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.mkdir(&env, "/new").unwrap();
        assert!(vfs.dir_exists("/new"));
        assert_eq!(
            vfs.mkdir(&env, "/new").unwrap_err(),
            VfsError::Logic(Errno::EEXIST)
        );
    }

    #[test]
    fn create_truncates_existing_file() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.write_all(&env, "/f", b"hello world").unwrap();
        let fd2 = vfs.create(&env, "/f").unwrap(); // Truncating create.
        vfs.write(&env, fd2, b"bye").unwrap();
        vfs.close(&env, fd2).unwrap();
        assert_eq!(vfs.contents("/f").unwrap(), b"bye");
    }

    #[test]
    fn write_at_interior_offset_overwrites_in_place() {
        // POSIX positional writes overwrite; they do not truncate the tail.
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"hello world");
        let fd = vfs.open_rw(&env, "/f").unwrap();
        vfs.write(&env, fd, b"HELLO").unwrap();
        vfs.close(&env, fd).unwrap();
        assert_eq!(vfs.contents("/f").unwrap(), b"HELLO world");
    }

    #[test]
    fn append_handle_writes_at_end_of_file() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/log", b"one\n");
        let fd = vfs.open_append(&env, "/log").unwrap();
        vfs.write(&env, fd, b"two\n").unwrap();
        vfs.close(&env, fd).unwrap();
        assert_eq!(vfs.contents("/log").unwrap(), b"one\ntwo\n");
        // A second append handle still lands at the (new) end.
        let fd2 = vfs.open_append(&env, "/log").unwrap();
        vfs.write(&env, fd2, b"three\n").unwrap();
        vfs.close(&env, fd2).unwrap();
        assert_eq!(vfs.contents("/log").unwrap(), b"one\ntwo\nthree\n");
    }

    #[test]
    fn open_append_creates_missing_file() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        let fd = vfs.open_append(&env, "/new.log").unwrap();
        vfs.write(&env, fd, b"x").unwrap();
        vfs.close(&env, fd).unwrap();
        assert_eq!(vfs.contents("/new.log").unwrap(), b"x");
    }

    #[test]
    fn read_from_write_only_state() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"abc");
        let fd = vfs.open(&env, "/f").unwrap();
        assert!(vfs.write(&env, fd, b"x").is_err());
        vfs.close(&env, fd).unwrap();
    }

    #[test]
    fn injected_errno_is_preserved() {
        let env = LibcEnv::new(FaultPlan::single(Func::Write, 1, Errno::ENOSPC));
        let vfs = Vfs::new();
        let fd = vfs.create(&env, "/f").unwrap();
        assert_eq!(
            vfs.write(&env, fd, b"x").unwrap_err().errno(),
            Errno::ENOSPC
        );
    }

    // ---- Durability model ----------------------------------------------

    #[test]
    fn unsynced_write_is_lost_on_crash() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"dirty").unwrap();
        vfs.close(&env, fd).unwrap();
        assert_eq!(vfs.contents("/f").unwrap(), b"dirty"); // Visible...
        assert_eq!(vfs.durable_contents("/f").unwrap(), b""); // ...not durable.
        vfs.crash();
        assert_eq!(vfs.contents("/f").unwrap(), b""); // Create survived, bytes did not.
        assert_eq!(vfs.open_handles(), 0);
    }

    #[test]
    fn fsynced_write_survives_crash() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"safe").unwrap();
        vfs.fsync(&env, fd).unwrap();
        vfs.write(&env, fd, b"gone").unwrap();
        vfs.close(&env, fd).unwrap();
        vfs.crash();
        assert_eq!(vfs.contents("/f").unwrap(), b"safe");
    }

    #[test]
    fn metadata_ops_are_journaled_durable() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.mkdir(&env, "/d").unwrap();
        vfs.seed_file("/old", b"bytes");
        vfs.unlink(&env, "/old").unwrap();
        vfs.seed_file("/from", b"payload");
        vfs.rename(&env, "/from", "/to").unwrap();
        vfs.crash();
        assert!(vfs.dir_exists("/d"));
        assert!(!vfs.file_exists("/old"));
        assert!(!vfs.file_exists("/from"));
        assert_eq!(vfs.contents("/to").unwrap(), b"payload");
    }

    #[test]
    fn truncating_create_discards_old_durable_bytes() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"precious");
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"new").unwrap();
        vfs.close(&env, fd).unwrap();
        vfs.crash();
        // The truncation was journaled, the rewrite was not fsynced:
        // both the old and the new bytes are gone.
        assert_eq!(vfs.contents("/f").unwrap(), b"");
    }

    #[test]
    fn rename_of_unsynced_file_clobbers_durable_destination() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/dst", b"old durable");
        let fd = vfs.create(&env, "/src").unwrap();
        vfs.write(&env, fd, b"unsynced").unwrap();
        vfs.close(&env, fd).unwrap();
        vfs.rename(&env, "/src", "/dst").unwrap();
        vfs.crash();
        // The namespace change was journaled; the data never was. The
        // destination now denotes the created-then-never-synced inode.
        assert_eq!(vfs.contents("/dst").unwrap(), b"");
    }

    // ---- Rule-driven faults --------------------------------------------

    #[test]
    fn error_rule_fails_the_op_and_records_injection() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.arm_rules(vec![rule(
            VfsOp::Write,
            2,
            FaultKind::Error(Errno::ENOSPC),
        )]);
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"first").unwrap();
        assert_eq!(
            vfs.write(&env, fd, b"second").unwrap_err(),
            VfsError::Injected(Errno::ENOSPC)
        );
        vfs.write(&env, fd, b"third").unwrap(); // Rules fire once.
        let inj = env.injections();
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].fault.errno, Errno::ENOSPC);
        assert_eq!(inj[0].fault.call_number, 2);
    }

    #[test]
    fn short_write_rule_tears_the_buffer() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.arm_rules(vec![rule(VfsOp::Write, 1, FaultKind::ShortWrite)]);
        let fd = vfs.create(&env, "/f").unwrap();
        let n = vfs.write(&env, fd, b"abcdefgh").unwrap();
        assert_eq!(n, 4);
        assert_eq!(vfs.contents("/f").unwrap(), b"abcd");
        // A caller that checks the count can complete the write.
        let n2 = vfs.write(&env, fd, b"efgh").unwrap();
        assert_eq!(n2, 4);
        assert_eq!(vfs.contents("/f").unwrap(), b"abcdefgh");
    }

    #[test]
    fn dropped_fsync_reports_success_but_flushes_nothing() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.arm_rules(vec![rule(VfsOp::Fsync, 1, FaultKind::DropFsync)]);
        let fd = vfs.create(&env, "/f").unwrap();
        vfs.write(&env, fd, b"data").unwrap();
        vfs.fsync(&env, fd).unwrap(); // Lies.
        vfs.close(&env, fd).unwrap();
        vfs.crash();
        assert_eq!(vfs.contents("/f").unwrap(), b"");
        assert_eq!(env.injections().len(), 1);
    }

    #[test]
    fn torn_rename_resurrects_old_name_after_crash() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/a", b"payload");
        vfs.arm_rules(vec![rule(VfsOp::Rename, 1, FaultKind::TornRename)]);
        vfs.rename(&env, "/a", "/b").unwrap();
        assert!(vfs.file_exists("/b")); // Visible rename happened...
        assert!(!vfs.file_exists("/a"));
        vfs.crash();
        assert!(vfs.file_exists("/a")); // ...but never became durable.
        assert!(!vfs.file_exists("/b"));
        assert_eq!(vfs.contents("/a").unwrap(), b"payload");
    }

    #[test]
    fn rules_survive_crash_until_cleared() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.seed_file("/f", b"x");
        vfs.arm_rules(vec![rule(VfsOp::Open, 2, FaultKind::Error(Errno::EIO))]);
        assert!(vfs.open(&env, "/f").is_ok());
        vfs.crash();
        // The environment's fault is still armed after the crash...
        assert!(vfs.open(&env, "/f").is_err());
        vfs.clear_rules();
        // ...until the harness explicitly clears it for recovery.
        assert!(vfs.open(&env, "/f").is_ok());
    }

    #[test]
    fn replay_log_is_deterministic_and_complete() {
        let run = || {
            let env = LibcEnv::fault_free();
            let vfs = Vfs::new();
            vfs.arm_rules(vec![rule(VfsOp::Fsync, 1, FaultKind::DropFsync)]);
            let fd = vfs.create(&env, "/f").unwrap();
            vfs.write(&env, fd, b"123456").unwrap();
            vfs.fsync(&env, fd).unwrap();
            vfs.close(&env, fd).unwrap();
            vfs.rendered_log()
        };
        let a = run();
        assert_eq!(a, run());
        // create, write, fsync, close — every armed op is logged.
        assert_eq!(a.lines().count(), 4);
        assert!(a.contains("dropped-fsync"), "{a}");
    }

    #[test]
    fn dormant_layer_logs_nothing() {
        let env = LibcEnv::fault_free();
        let vfs = Vfs::new();
        vfs.write_all(&env, "/f", b"abc").unwrap();
        assert!(vfs.replay_log().is_empty());
        assert!(vfs.rendered_log().is_empty());
    }
}
