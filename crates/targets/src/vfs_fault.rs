//! Rule-driven fault layer for the in-memory VFS.
//!
//! Where [`LibcEnv`](afex_inject::LibcEnv) injects faults by *libc
//! function × call number*, this layer injects them by *VFS operation ×
//! path match × timing* — the shape crash-recovery scenarios need: "the
//! 2nd write to the WAL is short", "the fsync after the journal append is
//! silently dropped", "the checkpoint rename is torn by a crash". Rules
//! are armed on a [`Vfs`](crate::vfs::Vfs); every operation the VFS
//! performs while armed is recorded to a replay log, so any failing run
//! can be reproduced and diffed byte-for-byte.
//!
//! The kinds go beyond errno injection:
//!
//! - [`FaultKind::Error`] — the call fails with an errno, like a plan
//!   fault.
//! - [`FaultKind::ShortWrite`] — the write *succeeds* but applies only
//!   half the requested bytes (torn write; callers that ignore the
//!   returned count silently lose data).
//! - [`FaultKind::DropFsync`] — the fsync *reports success* but flushes
//!   nothing (lying disk firmware / eat-my-data caches).
//! - [`FaultKind::TornRename`] — the rename lands in the visible
//!   namespace but never reaches the durable one; after a crash the old
//!   name reappears.

use afex_inject::{Errno, Func};
use std::fmt;

/// The VFS operations a fault rule can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VfsOp {
    /// `open` for reading an existing file.
    Open,
    /// `open(O_CREAT|O_TRUNC)` — truncating create.
    Create,
    /// `open(O_CREAT|O_APPEND)` — append-mode open.
    Append,
    /// `read` through a handle.
    Read,
    /// `write` through a handle.
    Write,
    /// `fsync` of a handle.
    Fsync,
    /// `close` of a handle.
    Close,
    /// `rename` of a path.
    Rename,
    /// `unlink` of a path.
    Unlink,
    /// `mkdir`.
    Mkdir,
    /// `stat`.
    Stat,
}

impl VfsOp {
    /// All ops, in canonical (fault-space axis) order.
    pub const ALL: [VfsOp; 11] = [
        VfsOp::Open,
        VfsOp::Create,
        VfsOp::Append,
        VfsOp::Read,
        VfsOp::Write,
        VfsOp::Fsync,
        VfsOp::Close,
        VfsOp::Rename,
        VfsOp::Unlink,
        VfsOp::Mkdir,
        VfsOp::Stat,
    ];

    /// The op's spelling on fault-space axes and in replay logs.
    pub fn name(self) -> &'static str {
        match self {
            VfsOp::Open => "open",
            VfsOp::Create => "create",
            VfsOp::Append => "append",
            VfsOp::Read => "read",
            VfsOp::Write => "write",
            VfsOp::Fsync => "fsync",
            VfsOp::Close => "close",
            VfsOp::Rename => "rename",
            VfsOp::Unlink => "unlink",
            VfsOp::Mkdir => "mkdir",
            VfsOp::Stat => "stat",
        }
    }

    /// Parses an op name.
    pub fn from_name(s: &str) -> Option<VfsOp> {
        VfsOp::ALL.iter().copied().find(|op| op.name() == s)
    }

    /// The libc function this op announces — rule firings are recorded
    /// as injections of this function, so recovery scenarios cluster
    /// with the same stack-trace machinery as plan faults.
    pub fn func(self) -> Func {
        match self {
            VfsOp::Open | VfsOp::Create | VfsOp::Append => Func::Open,
            VfsOp::Read => Func::Read,
            VfsOp::Write => Func::Write,
            VfsOp::Fsync => Func::Fsync,
            VfsOp::Close => Func::Close,
            VfsOp::Rename => Func::Rename,
            VfsOp::Unlink => Func::Unlink,
            VfsOp::Mkdir => Func::Mkdir,
            VfsOp::Stat => Func::Stat,
        }
    }
}

impl fmt::Display for VfsOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a matching rule does to the targeted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the call with this errno (the classic injection).
    Error(Errno),
    /// Apply only half the requested bytes, reporting the short count.
    /// Applies to [`VfsOp::Write`] only.
    ShortWrite,
    /// Report success without making anything durable. Applies to
    /// [`VfsOp::Fsync`] only.
    DropFsync,
    /// Apply the rename to the visible namespace only; the durable
    /// namespace keeps the old name. Applies to [`VfsOp::Rename`] only.
    TornRename,
}

impl FaultKind {
    /// Whether this kind can affect `op` at all. Inapplicable pairs
    /// (a short write on `close`, a dropped fsync on `read`) are the
    /// fault-space holes explorers must discover, exactly like call
    /// numbers a workload never reaches.
    pub fn applies_to(self, op: VfsOp) -> bool {
        match self {
            FaultKind::Error(_) => true,
            FaultKind::ShortWrite => op == VfsOp::Write,
            FaultKind::DropFsync => op == VfsOp::Fsync,
            FaultKind::TornRename => op == VfsOp::Rename,
        }
    }

    /// The errno recorded for the injection. The silent kinds report
    /// success to the target, but the injection record still needs a
    /// representative errno; `EIO` is the canonical lying-hardware one.
    pub fn errno(self) -> Errno {
        match self {
            FaultKind::Error(e) => e,
            FaultKind::ShortWrite | FaultKind::DropFsync | FaultKind::TornRename => Errno::EIO,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Error(e) => write!(f, "error-{e}"),
            FaultKind::ShortWrite => f.write_str("short-write"),
            FaultKind::DropFsync => f.write_str("drop-fsync"),
            FaultKind::TornRename => f.write_str("torn-rename"),
        }
    }
}

/// Path predicate of a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathMatch {
    /// Matches every path.
    Any,
    /// Matches paths containing this substring.
    Contains(String),
}

impl PathMatch {
    /// Whether `path` satisfies the predicate.
    pub fn matches(&self, path: &str) -> bool {
        match self {
            PathMatch::Any => true,
            PathMatch::Contains(s) => path.contains(s.as_str()),
        }
    }
}

/// One injection rule: fires exactly once, on the `nth` (1-based)
/// operation matching `(op, path)`. The once-only semantics mirror
/// [`AtomicFault`](afex_inject::AtomicFault)'s single-call targeting and
/// keep retry loops terminating (a retried short write completes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRule {
    /// The targeted operation.
    pub op: VfsOp,
    /// The path predicate.
    pub path: PathMatch,
    /// Which matching operation fires the rule (1-based).
    pub nth: u32,
    /// What happens when it fires.
    pub kind: FaultKind,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = match &self.path {
            PathMatch::Any => "*".to_owned(),
            PathMatch::Contains(s) => format!("*{s}*"),
        };
        write!(f, "{} #{} on {} -> {}", self.op, self.nth, path, self.kind)
    }
}

/// What the fault layer decided for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No rule fired; the operation proceeds normally.
    Ok,
    /// The operation fails with this errno.
    Error(Errno),
    /// The write applies only part of the requested bytes.
    Short,
    /// The fsync reports success but flushes nothing.
    DroppedFsync,
    /// The rename lands only in the visible namespace.
    Torn,
}

impl Decision {
    fn name(self) -> String {
        match self {
            Decision::Ok => "ok".to_owned(),
            Decision::Error(e) => format!("error-{e}"),
            Decision::Short => "short".to_owned(),
            Decision::DroppedFsync => "dropped-fsync".to_owned(),
            Decision::Torn => "torn".to_owned(),
        }
    }
}

/// One replay-log entry: an operation the armed VFS performed, with the
/// fault decision and the byte counts involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Sequence number (0-based, per arming).
    pub seq: u64,
    /// The operation.
    pub op: VfsOp,
    /// The operated path.
    pub path: String,
    /// What the layer decided.
    pub decision: Decision,
    /// Bytes the caller asked to move (0 for non-data ops).
    pub requested: usize,
    /// Bytes actually moved.
    pub applied: usize,
}

impl LogEntry {
    /// Canonical one-line rendering; the concatenation over a run is the
    /// byte-identical determinism witness.
    pub fn render(&self) -> String {
        format!(
            "#{:04} {} {} {}B/{}B {}",
            self.seq,
            self.op,
            self.path,
            self.applied,
            self.requested,
            self.decision.name()
        )
    }
}

/// The armed rule set plus the replay log. Owned by the VFS behind a
/// `RefCell`; dormant (and free) until [`FaultLayer::arm`] is called.
#[derive(Debug, Default)]
pub struct FaultLayer {
    armed: bool,
    /// Each rule with its match counter and whether it already fired.
    rules: Vec<(FaultRule, u32, bool)>,
    log: Vec<LogEntry>,
    seq: u64,
}

impl FaultLayer {
    /// Arms the layer with `rules`, clearing any previous log. An empty
    /// rule set still turns logging on (fault-free replay logs are the
    /// baseline of the determinism contract).
    pub fn arm(&mut self, rules: Vec<FaultRule>) {
        self.armed = true;
        self.rules = rules.into_iter().map(|r| (r, 0, false)).collect();
        self.log.clear();
        self.seq = 0;
    }

    /// Disarms the layer: no further rules fire and no ops are logged.
    /// The log is retained for inspection.
    pub fn disarm(&mut self) {
        self.armed = false;
        self.rules.clear();
    }

    /// Whether the layer is currently armed.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Decides the fate of one operation, logging it. Returns
    /// [`Decision::Ok`] when dormant.
    pub fn decide(&mut self, op: VfsOp, path: &str, requested: usize) -> Decision {
        if !self.armed {
            return Decision::Ok;
        }
        let mut decision = Decision::Ok;
        for (rule, count, fired) in &mut self.rules {
            if rule.op != op || !rule.path.matches(path) || !rule.kind.applies_to(op) {
                continue;
            }
            *count += 1;
            if *fired || *count != rule.nth || decision != Decision::Ok {
                continue;
            }
            *fired = true;
            decision = match rule.kind {
                FaultKind::Error(e) => Decision::Error(e),
                FaultKind::ShortWrite => Decision::Short,
                FaultKind::DropFsync => Decision::DroppedFsync,
                FaultKind::TornRename => Decision::Torn,
            };
        }
        let applied = match decision {
            Decision::Error(_) => 0,
            Decision::Short => requested / 2,
            _ => requested,
        };
        self.log.push(LogEntry {
            seq: self.seq,
            op,
            path: path.to_owned(),
            decision,
            requested,
            applied,
        });
        self.seq += 1;
        decision
    }

    /// The replay log collected since the last arming.
    pub fn log(&self) -> &[LogEntry] {
        &self.log
    }

    /// The whole log rendered one entry per line — byte-identical across
    /// runs of the same workload under the same rules.
    pub fn rendered(&self) -> String {
        let mut out = String::new();
        for e in &self.log {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(op: VfsOp, nth: u32, kind: FaultKind) -> FaultRule {
        FaultRule {
            op,
            path: PathMatch::Any,
            nth,
            kind,
        }
    }

    #[test]
    fn dormant_layer_decides_ok_and_logs_nothing() {
        let mut layer = FaultLayer::default();
        assert_eq!(layer.decide(VfsOp::Write, "/f", 10), Decision::Ok);
        assert!(layer.log().is_empty());
        assert!(!layer.is_armed());
    }

    #[test]
    fn rule_fires_on_exact_nth_match_once() {
        let mut layer = FaultLayer::default();
        layer.arm(vec![rule(VfsOp::Write, 2, FaultKind::Error(Errno::EIO))]);
        assert_eq!(layer.decide(VfsOp::Write, "/f", 4), Decision::Ok);
        assert_eq!(layer.decide(VfsOp::Write, "/f", 4), Decision::Error(Errno::EIO));
        assert_eq!(layer.decide(VfsOp::Write, "/f", 4), Decision::Ok);
        assert_eq!(layer.log().len(), 3);
    }

    #[test]
    fn path_match_filters_the_counter() {
        let mut layer = FaultLayer::default();
        layer.arm(vec![FaultRule {
            op: VfsOp::Write,
            path: PathMatch::Contains("wal".into()),
            nth: 1,
            kind: FaultKind::ShortWrite,
        }]);
        // A non-matching path neither fires nor advances the counter.
        assert_eq!(layer.decide(VfsOp::Write, "/data/t.MYD", 8), Decision::Ok);
        assert_eq!(layer.decide(VfsOp::Write, "/data/wal.log", 8), Decision::Short);
    }

    #[test]
    fn kind_op_applicability() {
        assert!(FaultKind::ShortWrite.applies_to(VfsOp::Write));
        assert!(!FaultKind::ShortWrite.applies_to(VfsOp::Read));
        assert!(FaultKind::DropFsync.applies_to(VfsOp::Fsync));
        assert!(!FaultKind::DropFsync.applies_to(VfsOp::Write));
        assert!(FaultKind::TornRename.applies_to(VfsOp::Rename));
        assert!(!FaultKind::TornRename.applies_to(VfsOp::Unlink));
        for op in VfsOp::ALL {
            assert!(FaultKind::Error(Errno::EIO).applies_to(op));
        }
        // An inapplicable rule never fires, even on its nth match.
        let mut layer = FaultLayer::default();
        layer.arm(vec![rule(VfsOp::Close, 1, FaultKind::ShortWrite)]);
        assert_eq!(layer.decide(VfsOp::Close, "/f", 0), Decision::Ok);
    }

    #[test]
    fn short_write_applies_half() {
        let mut layer = FaultLayer::default();
        layer.arm(vec![rule(VfsOp::Write, 1, FaultKind::ShortWrite)]);
        layer.decide(VfsOp::Write, "/f", 9);
        assert_eq!(layer.log()[0].applied, 4);
        assert_eq!(layer.log()[0].requested, 9);
    }

    #[test]
    fn log_renders_deterministically() {
        let run = || {
            let mut layer = FaultLayer::default();
            layer.arm(vec![rule(VfsOp::Fsync, 1, FaultKind::DropFsync)]);
            layer.decide(VfsOp::Create, "/f", 0);
            layer.decide(VfsOp::Write, "/f", 6);
            layer.decide(VfsOp::Fsync, "/f", 0);
            layer.rendered()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("dropped-fsync"), "{a}");
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn op_names_and_funcs_roundtrip() {
        for op in VfsOp::ALL {
            assert_eq!(VfsOp::from_name(op.name()), Some(op));
            let _ = op.func(); // Every op maps to an announced function.
        }
        assert_eq!(VfsOp::from_name("nosuch"), None);
        assert_eq!(VfsOp::Append.func(), Func::Open);
    }

    #[test]
    fn rule_and_kind_render() {
        let r = FaultRule {
            op: VfsOp::Fsync,
            path: PathMatch::Contains("journal".into()),
            nth: 3,
            kind: FaultKind::DropFsync,
        };
        assert_eq!(r.to_string(), "fsync #3 on *journal* -> drop-fsync");
        assert_eq!(FaultKind::Error(Errno::ENOSPC).to_string(), "error-ENOSPC");
        assert_eq!(FaultKind::Error(Errno::ENOSPC).errno(), Errno::ENOSPC);
        assert_eq!(FaultKind::DropFsync.errno(), Errno::EIO);
    }
}
