//! Simulated systems under test for AFEX.
//!
//! The paper evaluates AFEX on MySQL 5.1.44, Apache httpd 2.3.8, coreutils
//! 8.1 and MongoDB 0.8/2.0. Those binaries are not available here, so this
//! crate provides miniature, deterministic re-implementations that preserve
//! the properties the evaluation depends on:
//!
//! - every environment interaction goes through the
//!   [`LibcEnv`](afex_inject::LibcEnv) facade, so library-level faults can
//!   be injected at precise `<testID, functionName, callNumber>` points;
//! - each target ships a default test suite (the `Xtest` axis);
//! - error handling is mostly correct, with the paper's actual bugs
//!   re-seeded structurally (MySQL's double-unlock and errmsg-read bugs,
//!   Apache's unchecked `strdup`), plus maturity-dependent robustness in
//!   the document store;
//! - the code is modular, which is precisely what gives fault spaces the
//!   exploitable structure of Fig. 1.
//!
//! Modules:
//!
//! - [`vfs`] — an in-memory filesystem whose every operation announces the
//!   corresponding libc call to the injection environment, with a
//!   visible/durable namespace split and a [`Vfs::crash`] operation.
//! - [`vfs_fault`] — the rule-driven fault layer armed on the VFS: rules
//!   keyed by (op × path match × timing) injecting errors, short writes,
//!   dropped fsyncs and torn renames, with a deterministic replay log.
//! - [`recovery`] — the crash-recovery oracle and the `vfs:*` target
//!   family: run a workload under an injection rule, crash, reopen with a
//!   fresh engine, and verify recovery invariants.
//! - [`harness`] — the [`harness::Target`] trait plus the runner
//!   that executes one test under a fault plan, catching crashes.
//! - [`coreutils`] — ten UNIX utilities with a 29-test suite (§7.2's
//!   1,653-point `Φ_coreutils`).
//! - [`minidb`] — the MySQL stand-in (storage engine, WAL, message
//!   catalog, table locks) with the two §7.1 bugs.
//! - [`httpd`] — the Apache stand-in (config parser, module registry,
//!   request pipeline) with the Fig. 7 `strdup` bug.
//! - [`docstore`] — the MongoDB stand-in in two development stages (§7.6).
//! - [`spaces`] — the canonical fault spaces of §7 built from these
//!   targets (`Φ_coreutils`, `Φ_MySQL`, `Φ_Apache`, `Φ_docstore`).

pub mod coreutils;
pub mod docstore;
pub mod harness;
pub mod httpd;
pub mod minidb;
pub mod proc;
pub mod recovery;
pub mod spaces;
pub mod spaces_multi;
pub mod vfs;
pub mod vfs_fault;

pub use harness::{baseline_pass_count, run_test, Target};
pub use vfs::{Vfs, VfsError};
pub use vfs_fault::{FaultKind, FaultRule, PathMatch, VfsOp};
