//! The system-under-test abstraction and the per-test runner.
//!
//! A [`Target`] exposes a named test suite (the `Xtest` axis of its fault
//! space) and runs one test against an injection environment. The
//! [`run_test`] runner is what a node manager executes: it builds a fresh
//! [`LibcEnv`] for the fault plan, runs the workload, catches crashes
//! (panics stand in for segfaults/aborts), and assembles the
//! [`TestOutcome`] the sensors report to the explorer.

use afex_inject::{Errno, FaultPlan, LibcEnv, TestOutcome, TestStatus};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Why a workload stopped without crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// An environment fault propagated out; the run exits non-zero
    /// (graceful failure — the recovery code worked).
    Fault(Errno),
    /// A test assertion failed: the run completed but produced wrong
    /// results (silent corruption made visible by the check).
    Check(String),
    /// The workload stopped making progress (retry-loop watchdog).
    Hang,
}

impl From<crate::vfs::VfsError> for RunError {
    fn from(e: crate::vfs::VfsError) -> Self {
        RunError::Fault(e.errno())
    }
}

/// Result of one workload execution.
pub type RunResult = Result<(), RunError>;

/// A system under test with its default test suite.
pub trait Target: Send + Sync {
    /// Target name (e.g. `"coreutils"`, `"minidb"`).
    fn name(&self) -> &str;

    /// Number of tests in the default suite (the `Xtest` axis length).
    fn num_tests(&self) -> usize;

    /// Total number of declared basic blocks, for coverage percentages.
    fn total_blocks(&self) -> usize;

    /// Runs test `test_id` (0-based) under the given environment. The
    /// workload announces its libc calls through `env` and returns whether
    /// the test's own assertions held.
    ///
    /// # Panics
    ///
    /// Target code panics to model crashes (segfault/abort); the runner
    /// catches them.
    fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult;
}

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Installs (once) a panic hook that stays silent while [`run_test`] is
/// executing a workload, so millions of injected crashes do not spam
/// stderr, while panics elsewhere keep the default report.
fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Executes one fault-injection test: build the environment for `plan`,
/// run `target`'s test `test_id`, and classify the result.
///
/// Crashes (panics in target code) become [`TestStatus::Crashed`] with the
/// panic message; the coverage and injection records collected up to the
/// crash are preserved — exactly what a node manager scrapes from a dead
/// process's coredump and logs.
///
/// # Examples
///
/// ```
/// use afex_inject::FaultPlan;
/// use afex_targets::coreutils::Coreutils;
/// use afex_targets::{run_test, Target};
///
/// let target = Coreutils::new();
/// let outcome = run_test(&target, 0, &FaultPlan::none());
/// assert!(matches!(
///     outcome.status,
///     afex_inject::TestStatus::Passed
/// ));
/// ```
pub fn run_test(target: &dyn Target, test_id: usize, plan: &FaultPlan) -> TestOutcome {
    let env = LibcEnv::new(plan.clone());
    let result = catch_crash(|| target.run(test_id, &env));
    let status = match result {
        Ok(Ok(())) => TestStatus::Passed,
        Ok(Err(RunError::Fault(_) | RunError::Check(_))) => TestStatus::Failed,
        Ok(Err(RunError::Hang)) => TestStatus::Hung,
        Err(msg) => TestStatus::Crashed(msg),
    };
    TestOutcome {
        test_id,
        status,
        coverage: env.coverage(),
        injections: env.injections(),
    }
}

/// Runs `f` with panic output suppressed, converting a panic into its
/// rendered message. The crate-internal building block for harnesses that
/// must observe crashes mid-workload — the per-test runner above and the
/// recovery oracle's per-statement bracketing — without spamming stderr.
/// Suppression nests: an inner catch restores the outer state.
pub(crate) fn catch_crash<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    install_quiet_hook();
    let prev = SUPPRESS_PANIC_OUTPUT.with(|s| s.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(prev));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

/// Runs a target's entire suite fault-free and reports how many tests pass
/// (suite self-check; all targets must be green without injection).
pub fn baseline_pass_count(target: &dyn Target) -> usize {
    (0..target.num_tests())
        .filter(|&t| run_test(target, t, &FaultPlan::none()).status == TestStatus::Passed)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use afex_inject::Func;

    /// A minimal target with one test per behaviour class.
    struct Toy;

    impl Target for Toy {
        fn name(&self) -> &str {
            "toy"
        }
        fn num_tests(&self) -> usize {
            4
        }
        fn total_blocks(&self) -> usize {
            4
        }
        fn run(&self, test_id: usize, env: &LibcEnv) -> RunResult {
            let _f = env.frame("toy_main");
            env.block("toy", test_id as u32);
            match test_id {
                0 => Ok(()),
                1 => {
                    if env.call(Func::Malloc).failed() {
                        return Err(RunError::Fault(Errno::ENOMEM));
                    }
                    Ok(())
                }
                2 => panic!("segfault at toy.c:42"),
                3 => Err(RunError::Hang),
                _ => Err(RunError::Check("no such test".into())),
            }
        }
    }

    #[test]
    fn pass_fail_crash_hang_classification() {
        let t = Toy;
        assert_eq!(
            run_test(&t, 0, &FaultPlan::none()).status,
            TestStatus::Passed
        );
        let failed = run_test(&t, 1, &FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        assert_eq!(failed.status, TestStatus::Failed);
        assert!(failed.triggered());
        let crashed = run_test(&t, 2, &FaultPlan::none());
        assert_eq!(
            crashed.status,
            TestStatus::Crashed("segfault at toy.c:42".into())
        );
        assert_eq!(run_test(&t, 3, &FaultPlan::none()).status, TestStatus::Hung);
    }

    #[test]
    fn coverage_survives_crash() {
        let t = Toy;
        let o = run_test(&t, 2, &FaultPlan::none());
        assert!(o.status.is_crash());
        assert_eq!(o.coverage.blocks(), 1);
        assert!(o.coverage.covers("toy", 2));
    }

    #[test]
    fn untriggered_plan_passes() {
        let t = Toy;
        // Test 0 makes no malloc call, so the plan never fires.
        let o = run_test(&t, 0, &FaultPlan::single(Func::Malloc, 1, Errno::ENOMEM));
        assert_eq!(o.status, TestStatus::Passed);
        assert!(!o.triggered());
    }

    #[test]
    fn baseline_counts_passing_tests() {
        // Tests 2 and 3 fail even without faults — a deliberately sick toy.
        assert_eq!(baseline_pass_count(&Toy), 2);
    }

    #[test]
    fn string_panic_payloads_are_extracted() {
        struct P;
        impl Target for P {
            fn name(&self) -> &str {
                "p"
            }
            fn num_tests(&self) -> usize {
                1
            }
            fn total_blocks(&self) -> usize {
                0
            }
            fn run(&self, _t: usize, _env: &LibcEnv) -> RunResult {
                panic!("{}", format!("dynamic {}", 7));
            }
        }
        let o = run_test(&P, 0, &FaultPlan::none());
        assert_eq!(o.status, TestStatus::Crashed("dynamic 7".into()));
    }
}
